package load

import (
	"context"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/fault"
	"github.com/daskv/daskv/internal/wal"
)

func TestMatrixIsValid(t *testing.T) {
	seen := make(map[string]bool)
	for _, sc := range Matrix() {
		if sc.Name == "" {
			t.Fatal("unnamed scenario in matrix")
		}
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Fault != nil {
			if _, err := fault.ParseSpec(sc.Fault.Spec); err != nil {
				t.Fatalf("scenario %s: bad fault spec %q: %v", sc.Name, sc.Fault.Spec, err)
			}
			if sc.Fault.Stop <= sc.Fault.Start {
				t.Fatalf("scenario %s: fault window %v..%v is empty", sc.Name, sc.Fault.Start, sc.Fault.Stop)
			}
		}
		if sc.WALSync != "" {
			if _, err := wal.ParseSyncPolicy(sc.WALSync); err != nil {
				t.Fatalf("scenario %s: bad wal sync %q: %v", sc.Name, sc.WALSync, err)
			}
		}
		got, ok := ByName(sc.Name)
		if !ok || got.Name != sc.Name {
			t.Fatalf("ByName(%q) failed", sc.Name)
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Fatal("ByName invented a scenario")
	}
	if len(Names()) != len(seen) {
		t.Fatalf("Names() has %d entries, matrix %d", len(Names()), len(seen))
	}
}

func TestParsePolicies(t *testing.T) {
	pols, err := ParsePolicies("all")
	if err != nil {
		t.Fatalf("ParsePolicies(all): %v", err)
	}
	if len(pols) != 3 || pols[0].Name != "das" || pols[1].Name != "fcfs" || pols[2].Name != "das+pools" {
		t.Fatalf("all = %+v", pols)
	}
	if pols[2].PoolSplit <= 0 {
		t.Fatal("das+pools has no pool split")
	}
	if !pols[0].Adaptive || pols[1].Adaptive {
		t.Fatal("adaptive flags wrong")
	}
	if _, err := ParsePolicies("das,lifo"); err == nil {
		t.Fatal("unknown policy should error")
	}
	if _, err := ParsePolicies(""); err == nil {
		t.Fatal("empty list should error")
	}
}

// Boot the CI scenario for real and push a short open-loop burst
// through it end to end.
func TestBootAndRunCIScenario(t *testing.T) {
	sc, ok := ByName("ci")
	if !ok {
		t.Fatal("no ci scenario")
	}
	pols, err := ParsePolicies("das")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := sc.withDefaults().Boot(pols[0], 4, 42)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	defer cluster.Close()

	// The preload really wrote: a direct multiget returns values.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	vals, err := cluster.Clients[0].MGet(ctx, []string{"k0000000", "k0000001"})
	if err != nil {
		t.Fatalf("MGet after preload: %v", err)
	}
	if len(vals) != 2 || len(vals["k0000000"]) == 0 {
		t.Fatalf("preloaded values missing: %q", vals)
	}

	cfg := testConfig(t, cluster.Target(), 300, 300*time.Millisecond)
	cfg.Keys = 1000
	cfg.Workers = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed == 0 {
		t.Fatalf("no completions against live cluster: %+v", res)
	}
	if res.Errors > res.Sent/10 {
		t.Fatalf("error rate too high: %d/%d", res.Errors, res.Sent)
	}
	if res.Latency.P50 <= 0 {
		t.Fatalf("no latency recorded: %+v", res.Latency)
	}
}

func TestRunSweepFindsFrontierEdge(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real clusters")
	}
	sc, _ := ByName("ci")
	pols, err := ParsePolicies("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	// Second rate far beyond a 2-worker x 4-server cluster with a 100µs
	// cost floor (~80k ops/s theoretical, far less with fanout), so the
	// sweep must mark it unsustainable and stop there.
	f, err := RunSweep(sc, pols[0], SweepConfig{
		Rates:     []float64{200, 2_000_000},
		Duration:  400 * time.Millisecond,
		Warmup:    100 * time.Millisecond,
		Workers:   16,
		Clients:   4,
		P99Budget: 500 * time.Millisecond,
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if len(f.Points) != 2 {
		t.Fatalf("got %d points, want 2: %+v", len(f.Points), f)
	}
	if !f.Points[0].Sustainable {
		t.Fatalf("200 req/s should be sustainable: %+v", f.Points[0])
	}
	if f.Points[1].Sustainable {
		t.Fatalf("2M req/s should saturate: %+v", f.Points[1])
	}
	if f.SustainableRPS <= 0 {
		t.Fatalf("no sustainable rps recorded: %+v", f)
	}
	if f.Policy != "fcfs" {
		t.Fatalf("policy %q", f.Policy)
	}
}
