package load

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/fault"
	"github.com/daskv/daskv/internal/kv"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wal"
	"github.com/daskv/daskv/internal/wire"
	"github.com/daskv/daskv/internal/workload"
)

// PolicySpec names one scheduling configuration a frontier is drawn
// for. PoolSplit > 0 additionally splits each server's workers into
// size-class pools (the DAS+pools configuration from E23).
type PolicySpec struct {
	Name      string
	Factory   sched.Factory
	Adaptive  bool
	PoolSplit float64
}

// ParsePolicies parses a comma-separated policy list: das, fcfs,
// rein-sbf, das+pools — or "all" for the frontier trio the committed
// BENCH_frontier.json tracks (das, fcfs, das+pools).
func ParsePolicies(spec string) ([]PolicySpec, error) {
	if spec == "all" {
		spec = "das,fcfs,das+pools"
	}
	var out []PolicySpec
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "das":
			out = append(out, PolicySpec{Name: "das", Factory: core.Factory(core.LiveOptions()), Adaptive: true})
		case "das+pools":
			out = append(out, PolicySpec{Name: "das+pools", Factory: core.Factory(core.LiveOptions()), Adaptive: true, PoolSplit: 0.5})
		case "fcfs":
			out = append(out, PolicySpec{Name: "fcfs", Factory: sched.FCFSFactory})
		case "rein-sbf":
			out = append(out, PolicySpec{Name: "rein-sbf", Factory: sched.ReinSBFFactory})
		default:
			return nil, fmt.Errorf("load: unknown policy %q (das | fcfs | rein-sbf | das+pools | all)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("load: empty policy list")
	}
	return out, nil
}

// FaultPhase injects a fault window into a run: Spec (internal/fault
// grammar, e.g. "delay:2ms:0.5") is armed Start after the run begins
// and healed at Stop.
type FaultPhase struct {
	Spec  string
	Start time.Duration
	Stop  time.Duration
}

// Scenario is one cell of the evaluation matrix: a cluster shape, a
// keyspace and access pattern, a value-size distribution, a
// replication/consistency level, a WAL sync policy, and an optional
// fault schedule. Together the named scenarios exercise every
// subsystem under the one open-loop harness.
type Scenario struct {
	Name string
	Note string
	// Cluster shape.
	Servers int
	Workers int
	// Access pattern.
	Keys    int
	KeySkew float64
	Fanout  dist.Discrete
	// ValueSize draws each key's preloaded payload (nil = 16 B). The
	// server's cost model prices an op by the bytes it moves, so a
	// heavy-tailed size distribution is a heavy-tailed service
	// distribution.
	ValueSize dist.ByteSize
	// CostBase is the per-op service floor; CostPerByte prices each
	// payload byte (0 = size-independent service).
	CostBase    time.Duration
	CostPerByte time.Duration
	// Replication / consistency.
	Replication int
	Consistency wire.Consistency
	// WALSync enables durability when non-empty: "always",
	// "batch[:window]", "coalesce[:window]", or "none" (log without
	// fsync).
	WALSync string
	// Increments switches the workload from multigets to atomic
	// increments: each drawn key becomes one Incr(+1), the pure
	// hot-counter shape the coalescing WAL policy targets. The keyspace
	// is not preloaded (absent counters count from zero).
	Increments bool
	// Fault optionally schedules a fault window.
	Fault *FaultPhase
}

// CostModel is the server-side service pricing this scenario implies.
func (sc Scenario) CostModel() kv.CostModel {
	base, perByte := sc.CostBase, sc.CostPerByte
	return func(_ wire.OpType, _, valueLen int) time.Duration {
		return base + time.Duration(valueLen)*perByte
	}
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Servers <= 0 {
		sc.Servers = 4
	}
	if sc.Workers <= 0 {
		sc.Workers = 2
	}
	if sc.Keys <= 0 {
		sc.Keys = 4000
	}
	if sc.Fanout == nil {
		sc.Fanout = dist.UniformInt{Lo: 1, Hi: 4}
	}
	if sc.CostBase <= 0 {
		sc.CostBase = 200 * time.Microsecond
	}
	if sc.Replication <= 0 {
		sc.Replication = 1
	}
	return sc
}

// Matrix is the named scenario set: each row turns one knob of the
// system — fan-out, skew, value sizes, replication/consistency, WAL
// sync, faults — against the shared base shape.
func Matrix() []Scenario {
	return []Scenario{
		{
			Name:    "base",
			Note:    "uniform 16B values, fanout U(1,4), light Zipf — the frontier reference cell",
			KeySkew: 0.6,
		},
		{
			Name:    "fanout-wide",
			Note:    "fanout U(8,16): straggler-dominated RCT, the regime DAS targets",
			Fanout:  dist.UniformInt{Lo: 8, Hi: 16},
			KeySkew: 0.6,
		},
		{
			Name:    "zipf-hot",
			Note:    "Zipf 1.1 over a small keyspace: contention on a handful of hot keys",
			Keys:    2000,
			KeySkew: 1.1,
		},
		{
			Name:        "heavytail",
			Note:        "Pareto 256B..256KiB values priced per byte: elephants vs mice (size-class pool territory)",
			KeySkew:     0.9,
			ValueSize:   dist.ParetoBytes{Lo: 256, Hi: 256 << 10, Alpha: 0.7},
			CostBase:    100 * time.Microsecond,
			CostPerByte: 2 * time.Nanosecond,
		},
		{
			Name:        "replicated-quorum",
			Note:        "R=3 with QUORUM reads/writes over the LWW replica layer",
			Replication: 3,
			Consistency: wire.ConsistencyQuorum,
			KeySkew:     0.6,
		},
		{
			Name:    "durable-batch",
			Note:    "group-commit WAL (batch:2ms) on the write-behind of the preload plus read traffic",
			WALSync: "batch:2ms",
			KeySkew: 0.6,
		},
		{
			Name:       "counter-hot",
			Note:       "Zipf 1.1 pure increments on 512 counters under coalesce:2ms — disk bytes track distinct keys, not ops",
			Keys:       512,
			KeySkew:    1.1,
			Fanout:     dist.UniformInt{Lo: 1, Hi: 1},
			WALSync:    "coalesce:2ms",
			Increments: true,
			// Writes ack at window close, so each op parks a worker for
			// up to the 2ms window; deeper worker pools let more ops
			// share each commit window instead of capping throughput at
			// workers/window.
			Workers: 16,
		},
		{
			Name:    "faulty",
			Note:    "delay:2ms on half of all I/O for the middle of the run — frontier under degraded transport",
			KeySkew: 0.6,
			Fault:   &FaultPhase{Spec: "delay:2ms:0.5", Start: 2 * time.Second, Stop: 4 * time.Second},
		},
		{
			Name:     "ci",
			Note:     "base shape shrunk for the CI frontier-smoke gate: 1k keys, low cost floor",
			Keys:     1000,
			KeySkew:  0.6,
			CostBase: 100 * time.Microsecond,
		},
	}
}

// ByName finds a scenario in the matrix.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Matrix() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Names lists the matrix scenario names.
func Names() []string {
	out := make([]string, 0, len(Matrix()))
	for _, sc := range Matrix() {
		out = append(out, sc.Name)
	}
	sort.Strings(out)
	return out
}

// Cluster is one booted loopback system under test: servers with the
// scenario's cost model and durability/fault wiring, plus a pool of
// clients the load workers fan over.
type Cluster struct {
	Scenario Scenario
	Policy   PolicySpec
	Servers  []*kv.Server
	Clients  []*kv.Client
	injector *fault.Injector
	walRoot  string
}

// Boot builds the scenario's loopback cluster for one policy and
// preloads the keyspace. clients is the connection-pool width the
// Target fans over (each kv.Client holds one TCP connection per
// server).
func (sc Scenario) Boot(pol PolicySpec, clients int, seed uint64) (*Cluster, error) {
	sc = sc.withDefaults()
	if clients <= 0 {
		clients = 8
	}
	c := &Cluster{Scenario: sc, Policy: pol}
	if sc.Fault != nil {
		c.injector = fault.NewInjector(seed)
	}
	var walRoot string
	if sc.WALSync != "" {
		dir, err := os.MkdirTemp("", "dasload-wal-")
		if err != nil {
			return nil, fmt.Errorf("load: wal dir: %w", err)
		}
		walRoot = dir
		c.walRoot = dir
	}
	addrs := make(map[sched.ServerID]string, sc.Servers)
	for i := 0; i < sc.Servers; i++ {
		cfg := kv.ServerConfig{
			ID:          sched.ServerID(i),
			Addr:        "127.0.0.1:0",
			Policy:      pol.Factory,
			Workers:     sc.Workers,
			Cost:        sc.CostModel(),
			PoolSplit:   pol.PoolSplit,
			Replication: sc.Replication,
		}
		if c.injector != nil {
			cfg.WrapConn = c.injector.Conn
		}
		if walRoot != "" {
			sync, err := wal.ParseSyncPolicy(sc.WALSync)
			if err != nil {
				c.close()
				return nil, fmt.Errorf("load: scenario %s: %w", sc.Name, err)
			}
			cfg.WALDir = fmt.Sprintf("%s/srv-%d", walRoot, i)
			cfg.WALSync = sync
		}
		srv, err := kv.NewServer(cfg)
		if err != nil {
			c.close()
			return nil, fmt.Errorf("load: boot server %d: %w", i, err)
		}
		c.Servers = append(c.Servers, srv)
		addrs[srv.ID()] = srv.Addr()
	}
	demand := sc.CostModel()
	for i := 0; i < clients; i++ {
		cl, err := kv.NewClient(kv.ClientConfig{
			Servers:            addrs,
			Adaptive:           pol.Adaptive,
			Demand:             kv.DemandModel(demand),
			Replicas:           sc.Replication,
			DefaultConsistency: sc.Consistency,
			Seed:               seed + uint64(i)*7919,
			// The harness records failures itself; retries would couple
			// one request's latency to another's schedule slot.
			TraceDepth: -1,
		})
		if err != nil {
			c.close()
			return nil, fmt.Errorf("load: client %d: %w", i, err)
		}
		c.Clients = append(c.Clients, cl)
	}
	if err := c.preload(seed); err != nil {
		c.close()
		return nil, err
	}
	return c, nil
}

// preload fills the keyspace with values drawn from the scenario's
// size distribution so read traffic has real bytes to move.
func (c *Cluster) preload(seed uint64) error {
	sc := c.Scenario
	if sc.Increments {
		return nil // counters start from zero; random bytes would poison Incr
	}
	rng := dist.NewRand(seed ^ 0x9e3779b97f4a7c15)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cl := c.Clients[0]
	const chunk = 256
	pairs := make(map[string][]byte, chunk)
	flush := func() error {
		if len(pairs) == 0 {
			return nil
		}
		if err := cl.MSet(ctx, pairs); err != nil {
			return fmt.Errorf("load: preload: %w", err)
		}
		pairs = make(map[string][]byte, chunk)
		return nil
	}
	for k := 0; k < sc.Keys; k++ {
		n := int64(16)
		if sc.ValueSize != nil {
			n = sc.ValueSize.SampleBytes(rng)
		}
		v := make([]byte, n)
		for i := 0; i < len(v); i += 997 {
			v[i] = byte(rng.IntN(256))
		}
		pairs[workload.KeyName(k)] = v
		if len(pairs) >= chunk {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// Target returns the load target fanning requests over the client
// pool; worker w always uses client w mod len, so a worker maps to a
// stable set of connections.
func (c *Cluster) Target() Target {
	clients := c.Clients
	if c.Scenario.Increments {
		return TargetFunc(func(ctx context.Context, worker int, keys []string) error {
			cl := clients[worker%len(clients)]
			for _, k := range keys {
				if _, err := cl.Incr(ctx, k, 1); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return TargetFunc(func(ctx context.Context, worker int, keys []string) error {
		_, err := clients[worker%len(clients)].MGet(ctx, keys)
		return err
	})
}

// StartFaults arms the scenario's fault phase relative to now and
// returns a stop function that heals and cancels the timers. No-op
// without a fault phase.
func (c *Cluster) StartFaults() (stop func()) {
	if c.injector == nil || c.Scenario.Fault == nil {
		return func() {}
	}
	ph := c.Scenario.Fault
	spec, err := fault.ParseSpec(ph.Spec)
	if err != nil {
		// Scenario validation catches this in tests; at runtime a bad
		// spec degrades to a fault-free run.
		return func() {}
	}
	arm := time.AfterFunc(ph.Start, func() { spec.Apply(c.injector) })
	heal := time.AfterFunc(ph.Stop, c.injector.Heal)
	return func() {
		arm.Stop()
		heal.Stop()
		c.injector.Heal()
	}
}

// WALStats aggregates the durability counters across the cluster's
// servers — the disk economics of the point just run. Nil when the
// scenario runs without a WAL.
func (c *Cluster) WALStats() *wire.WALStats {
	var agg *wire.WALStats
	for _, s := range c.Servers {
		ws := s.StatsSnapshot().WAL
		if ws == nil {
			continue
		}
		if agg == nil {
			agg = &wire.WALStats{Policy: ws.Policy}
		}
		agg.Segments += ws.Segments
		agg.Bytes += ws.Bytes
		agg.Appended += ws.Appended
		agg.Fsyncs += ws.Fsyncs
		agg.CoalescedOps += ws.CoalescedOps
		agg.CoalescedRecords += ws.CoalescedRecords
		agg.CoalesceWindows += ws.CoalesceWindows
	}
	return agg
}

// Close tears the cluster down and removes any WAL scratch space.
func (c *Cluster) Close() error {
	c.close()
	return nil
}

func (c *Cluster) close() {
	for _, cl := range c.Clients {
		_ = cl.Close()
	}
	for _, s := range c.Servers {
		_ = s.Close()
	}
	if c.walRoot != "" {
		_ = os.RemoveAll(c.walRoot)
	}
}
