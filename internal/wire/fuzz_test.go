package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// seedFrame builds a well-formed request frame to seed the fuzzers.
func seedFrame(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	req := Request{
		ID: 7, Type: OpPut, Key: "seed-key", Value: []byte("seed-value"),
		Tags: Tags{RemainingNanos: 1000, SlackNanos: 10, BottleneckNanos: 900, DemandNanos: 500, Fanout: 3},
	}
	if err := w.WriteRequest(&req); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadRequest asserts the decoder never panics and never accepts a
// frame it cannot fully parse.
func FuzzReadRequest(f *testing.F) {
	f.Add(seedFrame(f))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 3, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var req Request
		for i := 0; i < 4; i++ {
			if err := r.ReadRequest(&req); err != nil {
				return // any error is acceptable; panics are not
			}
			if req.Type < OpGet || req.Type > OpCAS {
				t.Fatalf("decoder accepted invalid op type %d", req.Type)
			}
		}
	})
}

// FuzzReadResponse mirrors FuzzReadRequest for the response path.
func FuzzReadResponse(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteResponse(&Response{ID: 9, Status: StatusOK, Value: []byte("x")}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var resp Response
		for i := 0; i < 4; i++ {
			if err := r.ReadResponse(&resp); err != nil {
				return
			}
			if resp.Status < StatusOK || resp.Status > StatusError {
				t.Fatalf("decoder accepted invalid status %d", resp.Status)
			}
		}
	})
}

// FuzzRequestRoundTrip checks that whatever the writer emits, the
// reader returns intact.
func FuzzRequestRoundTrip(f *testing.F) {
	f.Add(uint64(1), "key", []byte("value"), int64(100), int64(5), uint32(3))
	f.Add(uint64(0), "", []byte{}, int64(0), int64(0), uint32(0))
	f.Fuzz(func(t *testing.T, id uint64, key string, value []byte, rem, slack int64, fanout uint32) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		want := Request{
			ID: id, Type: OpGet, Key: key, Value: value,
			Tags: Tags{RemainingNanos: rem, SlackNanos: slack, Fanout: fanout},
		}
		if err := w.WriteRequest(&want); err != nil {
			t.Fatalf("WriteRequest: %v", err)
		}
		// Sanity: header length matches the body.
		raw := buf.Bytes()
		if binary.BigEndian.Uint32(raw[:4]) != uint32(len(raw)-4) {
			t.Fatal("header length mismatch")
		}
		var got Request
		if err := NewReader(&buf).ReadRequest(&got); err != nil {
			t.Fatalf("ReadRequest: %v", err)
		}
		if got.ID != want.ID || got.Key != want.Key || !bytes.Equal(got.Value, want.Value) || got.Tags != want.Tags {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
		}
	})
}
