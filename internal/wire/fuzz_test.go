package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// seedFrame builds a well-formed request frame to seed the fuzzers.
func seedFrame(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	req := Request{
		ID: 7, Type: OpPut, Key: "seed-key", Value: []byte("seed-value"),
		Tags: Tags{RemainingNanos: 1000, SlackNanos: 10, BottleneckNanos: 900, DemandNanos: 500, Fanout: 3},
	}
	if err := w.WriteRequest(&req); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadRequest asserts the decoder never panics and never accepts a
// frame it cannot fully parse.
func FuzzReadRequest(f *testing.F) {
	f.Add(seedFrame(f))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 3, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var req Request
		for i := 0; i < 4; i++ {
			if err := r.ReadRequest(&req); err != nil {
				return // any error is acceptable; panics are not
			}
			if req.Type < OpGet || req.Type > OpCAS {
				t.Fatalf("decoder accepted invalid op type %d", req.Type)
			}
		}
	})
}

// FuzzReadResponse mirrors FuzzReadRequest for the response path.
func FuzzReadResponse(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteResponse(&Response{ID: 9, Status: StatusOK, Value: []byte("x")}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var resp Response
		for i := 0; i < 4; i++ {
			if err := r.ReadResponse(&resp); err != nil {
				return
			}
			if resp.Status < StatusOK || resp.Status > StatusDeadlineExceeded {
				t.Fatalf("decoder accepted invalid status %d", resp.Status)
			}
		}
	})
}

// FuzzServerDecode exercises the server-side decode loop the way a
// malfunctioning or malicious client would: a well-formed request
// stream put through fuzz-chosen truncation, length-prefix inflation,
// and a bit flip. The decoder must never panic, must reject any frame
// claiming more than MaxFrameSize, and whatever it does accept must be
// structurally valid.
func FuzzServerDecode(f *testing.F) {
	seed := seedFrame(f)
	f.Add(seed, uint16(len(seed)), uint32(0), uint8(0))
	f.Add(seed, uint16(4), uint32(0), uint8(0))             // header only
	f.Add(seed, uint16(len(seed)), uint32(1<<31), uint8(0)) // absurd length claim
	f.Add(seed, uint16(len(seed)), uint32(0), uint8(0x35))  // flipped mid-frame
	f.Fuzz(func(t *testing.T, frame []byte, cut uint16, lenOverride uint32, flip uint8) {
		data := append([]byte(nil), frame...)
		if int(cut) < len(data) {
			data = data[:cut] // truncate mid-frame
		}
		if len(data) >= 4 && lenOverride != 0 {
			binary.BigEndian.PutUint32(data[:4], lenOverride) // lie about the size
		}
		if len(data) > 0 {
			data[int(flip)%len(data)] ^= 1 << (flip % 8) // flip one bit
		}
		var wantTooLarge bool
		if len(data) >= 4 {
			wantTooLarge = binary.BigEndian.Uint32(data[:4]) > MaxFrameSize
		}
		r := NewReader(bytes.NewReader(data))
		var req Request
		for i := 0; i < 4; i++ {
			err := r.ReadRequest(&req)
			if err != nil {
				if i == 0 && wantTooLarge && !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("oversized claim rejected as %v, want ErrFrameTooLarge", err)
				}
				return // errors are fine; panics and bad accepts are not
			}
			if i == 0 && wantTooLarge {
				t.Fatal("decoder accepted a frame claiming more than MaxFrameSize")
			}
			if req.Type < OpGet || req.Type > OpCAS {
				t.Fatalf("decoder accepted invalid op type %d", req.Type)
			}
			if len(req.Key)+len(req.Value)+len(req.OldValue) > MaxFrameSize {
				t.Fatal("decoded fields exceed the frame bound")
			}
		}
	})
}

// FuzzBatchDecode exercises the server's batch decode path the way a
// broken or hostile client would: a well-formed batch frame put through
// fuzz-chosen count inflation, truncation, and a bit flip. The decoder
// must never panic, must bound what it accepts by the frame's actual
// payload, and every accepted operation must be structurally valid.
func FuzzBatchDecode(f *testing.F) {
	seedBatch := func(n int) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{ID: uint64(i), Type: OpGet, Key: "fuzz-key", Tags: Tags{Fanout: uint32(n)}}
		}
		if err := w.WriteBatch(reqs); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seedBatch(4), uint32(0), uint16(0), uint8(0))
	f.Add(seedBatch(4), uint32(1<<30), uint16(0), uint8(0)) // absurd count claim
	f.Add(seedBatch(8), uint32(0), uint16(40), uint8(0))    // truncated mid-batch
	f.Add(seedBatch(2), uint32(0), uint16(0), uint8(0x47))  // flipped bit
	f.Add(seedBatch(MaxBatchOps), uint32(0), uint16(0), uint8(0))
	f.Fuzz(func(t *testing.T, frame []byte, countOverride uint32, cut uint16, flip uint8) {
		data := append([]byte(nil), frame...)
		if countOverride != 0 && len(data) >= 10 && data[5] == kindBatch {
			binary.BigEndian.PutUint32(data[6:10], countOverride) // lie about the op count
		}
		if int(cut) != 0 && int(cut) < len(data) {
			data = data[:cut]
		}
		if len(data) > 0 {
			data[int(flip)%len(data)] ^= 1 << (flip % 8)
		}
		r := NewReader(bytes.NewReader(data))
		var reqs []Request
		for i := 0; i < 4; i++ {
			if _, err := r.ReadRequests(&reqs); err != nil {
				return // errors are fine; panics and bad accepts are not
			}
			if len(reqs) == 0 || len(reqs) > MaxBatchOps {
				t.Fatalf("decoder accepted implausible batch of %d ops", len(reqs))
			}
			for j := range reqs {
				if reqs[j].Type < OpGet || reqs[j].Type > OpCAS {
					t.Fatalf("op %d: decoder accepted invalid op type %d", j, reqs[j].Type)
				}
				if len(reqs[j].Key)+len(reqs[j].Value)+len(reqs[j].OldValue) > MaxFrameSize {
					t.Fatalf("op %d: decoded fields exceed the frame bound", j)
				}
			}
		}
	})
}

// FuzzRequestRoundTrip checks that whatever the writer emits, the
// reader returns intact.
func FuzzRequestRoundTrip(f *testing.F) {
	f.Add(uint64(1), "key", []byte("value"), int64(100), int64(5), uint32(3))
	f.Add(uint64(0), "", []byte{}, int64(0), int64(0), uint32(0))
	f.Fuzz(func(t *testing.T, id uint64, key string, value []byte, rem, slack int64, fanout uint32) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		want := Request{
			ID: id, Type: OpGet, Key: key, Value: value,
			Tags: Tags{RemainingNanos: rem, SlackNanos: slack, Fanout: fanout},
		}
		if err := w.WriteRequest(&want); err != nil {
			t.Fatalf("WriteRequest: %v", err)
		}
		// Sanity: header length matches the body.
		raw := buf.Bytes()
		if binary.BigEndian.Uint32(raw[:4]) != uint32(len(raw)-4) {
			t.Fatal("header length mismatch")
		}
		var got Request
		if err := NewReader(&buf).ReadRequest(&got); err != nil {
			t.Fatalf("ReadRequest: %v", err)
		}
		if got.ID != want.ID || got.Key != want.Key || !bytes.Equal(got.Value, want.Value) || got.Tags != want.Tags {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
		}
	})
}
