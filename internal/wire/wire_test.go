package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := Request{
		ID:    42,
		Type:  OpPut,
		Key:   "user:123",
		Value: []byte("hello world"),
		Tags: Tags{
			RemainingNanos:  1_500_000,
			SlackNanos:      300_000,
			BottleneckNanos: 1_200_000,
			DemandNanos:     800_000,
			Fanout:          7,
		},
		Version: 1_722_000_000_123,
	}
	if err := w.WriteRequest(&want); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	var got Request
	if err := NewReader(&buf).ReadRequest(&got); err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if got.ID != want.ID || got.Type != want.Type || got.Key != want.Key {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if !bytes.Equal(got.Value, want.Value) {
		t.Fatalf("value = %q, want %q", got.Value, want.Value)
	}
	if got.Tags != want.Tags {
		t.Fatalf("tags = %+v, want %+v", got.Tags, want.Tags)
	}
	if got.Version != want.Version {
		t.Fatalf("version = %d, want %d", got.Version, want.Version)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := Response{
		ID:     99,
		Status: StatusNotFound,
		Value:  nil,
		Feedback: Feedback{
			QueueLen:     17,
			BacklogNanos: 9_000_000,
			SpeedMilli:   850,
		},
		Version: 77,
		Timing: Timing{
			WaitNanos:    1_250_000,
			ServiceNanos: 430_000,
			SchedClass:   2,
		},
	}
	if err := w.WriteResponse(&want); err != nil {
		t.Fatalf("WriteResponse: %v", err)
	}
	var got Response
	if err := NewReader(&buf).ReadResponse(&got); err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if got.ID != want.ID || got.Status != want.Status {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if got.Feedback != want.Feedback {
		t.Fatalf("feedback = %+v, want %+v", got.Feedback, want.Feedback)
	}
	if got.Version != want.Version {
		t.Fatalf("version = %d, want %d", got.Version, want.Version)
	}
	if got.Timing != want.Timing {
		t.Fatalf("timing = %+v, want %+v", got.Timing, want.Timing)
	}
	if len(got.Value) != 0 {
		t.Fatalf("value = %q, want empty", got.Value)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := uint64(1); i <= 10; i++ {
		req := Request{ID: i, Type: OpGet, Key: "k"}
		if err := w.WriteRequest(&req); err != nil {
			t.Fatalf("WriteRequest %d: %v", i, err)
		}
	}
	r := NewReader(&buf)
	var req Request
	for i := uint64(1); i <= 10; i++ {
		if err := r.ReadRequest(&req); err != nil {
			t.Fatalf("ReadRequest %d: %v", i, err)
		}
		if req.ID != i {
			t.Fatalf("ID = %d, want %d", req.ID, i)
		}
	}
	if err := r.ReadRequest(&req); err != io.EOF {
		t.Fatalf("expected EOF at stream end, got %v", err)
	}
}

func TestReaderBufferReuseDoesNotAlias(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRequest(&Request{ID: 1, Type: OpPut, Key: "a", Value: []byte("first")}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRequest(&Request{ID: 2, Type: OpPut, Key: "b", Value: []byte("second")}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var r1, r2 Request
	if err := r.ReadRequest(&r1); err != nil {
		t.Fatal(err)
	}
	v1 := string(r1.Value)
	if err := r.ReadRequest(&r2); err != nil {
		t.Fatal(err)
	}
	if v1 != "first" || string(r2.Value) != "second" {
		t.Fatalf("values corrupted: %q, %q", v1, r2.Value)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	r := NewReader(bytes.NewReader(hdr[:]))
	var req Request
	if err := r.ReadRequest(&req); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRequest(&Request{ID: 1, Type: OpGet, Key: "k"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-3]
	var req Request
	if err := NewReader(bytes.NewReader(raw)).ReadRequest(&req); err == nil {
		t.Fatal("truncated frame should error")
	}
}

func TestBadVersionRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRequest(&Request{ID: 1, Type: OpGet, Key: "k"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // corrupt the version byte (after the 4-byte header)
	var req Request
	if err := NewReader(bytes.NewReader(raw)).ReadRequest(&req); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
}

func TestRequestAsResponseRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRequest(&Request{ID: 1, Type: OpGet, Key: "k"}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := NewReader(&buf).ReadResponse(&resp); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
}

func TestBadOpTypeRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRequest(&Request{ID: 1, Type: OpType(200), Key: "k"}); err != nil {
		t.Fatal(err)
	}
	var req Request
	if err := NewReader(&buf).ReadRequest(&req); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
}

func TestRequestRoundTripQuick(t *testing.T) {
	f := func(id uint64, key string, value []byte, rem, slack int64, fanout uint32) bool {
		if rem < 0 {
			rem = -rem
		}
		if slack < 0 {
			slack = -slack
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		want := Request{
			ID: id, Type: OpPut, Key: key, Value: value,
			Tags: Tags{RemainingNanos: rem, SlackNanos: slack, Fanout: fanout},
		}
		if err := w.WriteRequest(&want); err != nil {
			return false
		}
		var got Request
		if err := NewReader(&buf).ReadRequest(&got); err != nil {
			return false
		}
		return got.ID == want.ID && got.Key == want.Key &&
			bytes.Equal(got.Value, want.Value) && got.Tags == want.Tags
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
