package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// batchOf builds n distinguishable get requests.
func batchOf(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			ID:   uint64(i + 1),
			Type: OpGet,
			Key:  "batch-key-" + string(rune('a'+i%26)),
			Tags: Tags{RemainingNanos: int64(1000 + i), Fanout: uint32(n)},
		}
	}
	return reqs
}

func TestWriteBatchRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := batchOf(17)
	if err := w.WriteBatch(want); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	// One frame on the wire: header + payload, nothing after.
	frameLen := int(uint32(buf.Bytes()[0])<<24 | uint32(buf.Bytes()[1])<<16 |
		uint32(buf.Bytes()[2])<<8 | uint32(buf.Bytes()[3]))
	if buf.Len() != 4+frameLen {
		t.Fatalf("batch of %d produced %d bytes, frame claims %d", len(want), buf.Len(), frameLen)
	}
	r := NewReader(&buf)
	var got []Request
	version, err := r.ReadRequests(&got)
	if err != nil {
		t.Fatalf("ReadRequests: %v", err)
	}
	if version != Version {
		t.Fatalf("frame version = %d, want %d", version, Version)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Key != want[i].Key || got[i].Tags != want[i].Tags {
			t.Fatalf("op %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestWriteBatchV2Degradation pins the writer to Version2 and checks the
// batch degrades to a run of single-op v2 frames an old server parses
// one at a time.
func TestWriteBatchV2Degradation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SetVersion(Version2)
	want := batchOf(5)
	if err := w.WriteBatch(want); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	// A strict pre-batching server reads with ReadRequest, which rejects
	// batch frames outright — every frame here must parse as single-op.
	r := NewReader(&buf)
	for i := range want {
		var got Request
		if err := r.ReadRequest(&got); err != nil {
			t.Fatalf("op %d: ReadRequest: %v", i, err)
		}
		if got.ID != want[i].ID || got.Key != want[i].Key {
			t.Fatalf("op %d mismatch: got %+v want %+v", i, got, want[i])
		}
	}
	if _, err := r.next(); !errors.Is(err, io.EOF) {
		t.Fatalf("trailing data after %d frames: err=%v", len(want), err)
	}
}

// TestReadRequestsSingleFrame checks the server-side entry point accepts
// plain single-op frames from both protocol versions and reports the
// version for response echoing.
func TestReadRequestsSingleFrame(t *testing.T) {
	for _, v := range []byte{Version2, Version3, Version4} {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.SetVersion(v)
		req := Request{ID: 3, Type: OpPut, Key: "k", Value: []byte("v")}
		if err := w.WriteRequest(&req); err != nil {
			t.Fatalf("v%d: WriteRequest: %v", v, err)
		}
		var got []Request
		version, err := NewReader(&buf).ReadRequests(&got)
		if err != nil {
			t.Fatalf("v%d: ReadRequests: %v", v, err)
		}
		if version != v {
			t.Fatalf("reported version %d, want %d", version, v)
		}
		if len(got) != 1 || got[0].ID != 3 || got[0].Key != "k" {
			t.Fatalf("v%d: decoded %+v", v, got)
		}
	}
}

// TestReadRequestsReuse checks the decode slice and its element buffers
// are reused across frames, and that a wide batch followed by a narrow
// one does not leak stale operations.
func TestReadRequestsReuse(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBatch(batchOf(8)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(batchOf(2)); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var reqs []Request
	if _, err := r.ReadRequests(&reqs); err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 8 {
		t.Fatalf("first frame decoded %d ops, want 8", len(reqs))
	}
	first := &reqs[0]
	if _, err := r.ReadRequests(&reqs); err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("second frame decoded %d ops, want 2", len(reqs))
	}
	if &reqs[0] != first {
		t.Fatal("decode slice was reallocated between frames")
	}
}

// TestBatchRejects covers the decoder's batch plausibility gates.
func TestBatchRejects(t *testing.T) {
	encode := func(payload []byte) []byte {
		frame := make([]byte, 4+len(payload))
		frame[0] = byte(len(payload) >> 24)
		frame[1] = byte(len(payload) >> 16)
		frame[2] = byte(len(payload) >> 8)
		frame[3] = byte(len(payload))
		copy(frame[4:], payload)
		return frame
	}
	cases := map[string][]byte{
		// kindBatch on a v2 frame: batches did not exist in v2.
		"v2 batch":   encode([]byte{Version2, kindBatch, 0, 0, 0, 1}),
		"zero count": encode([]byte{Version3, kindBatch, 0, 0, 0, 0}),
		// Count claims more ops than the payload could possibly hold.
		"implausible count": encode([]byte{Version3, kindBatch, 0, 0, 0, 200}),
		// Count past the protocol ceiling.
		"over MaxBatchOps": encode([]byte{Version3, kindBatch, 0xff, 0xff, 0xff, 0xff}),
		"unknown kind":     encode([]byte{Version3, 9, 0}),
	}
	for name, frame := range cases {
		var reqs []Request
		if _, err := NewReader(bytes.NewReader(frame)).ReadRequests(&reqs); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err = %v, want ErrBadMessage", name, err)
		}
	}
}

// TestWriteBatchTooLarge checks the writer refuses batches past the
// protocol ceiling instead of emitting an undecodable frame.
func TestWriteBatchTooLarge(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteBatch(make([]Request, MaxBatchOps+1)); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
}

// TestEncodeAllocCeiling pins the steady-state allocation cost of the
// hot encode paths: a warmed writer encoding into a bufio'd sink must
// not allocate at all.
func TestEncodeAllocCeiling(t *testing.T) {
	w := NewWriter(io.Discard)
	reqs := batchOf(16)
	resp := Response{ID: 1, Status: StatusOK, Value: []byte("pooled-value")}
	if err := w.WriteBatch(reqs); err != nil { // warm the scratch buffer
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(100, func() {
		if err := w.WriteBatch(reqs); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("WriteBatch allocates %.1f/op in steady state, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		if err := w.EncodeResponse(&resp); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("EncodeResponse allocates %.1f/op in steady state, want 0", got)
	}
}

// TestDecodeAllocCeiling pins the steady-state allocation cost of the
// server's batch decode: with the request slice and its byte buffers
// warmed, re-decoding the same shape must stay under 2 allocs per op
// (the per-op cost is the Key string; everything else is reused).
func TestDecodeAllocCeiling(t *testing.T) {
	const ops = 16
	var frame bytes.Buffer
	if err := NewWriter(&frame).WriteBatch(batchOf(ops)); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()
	r := NewReader(bytes.NewReader(raw))
	var reqs []Request
	if _, err := r.ReadRequests(&reqs); err != nil { // warm slice + buffers
		t.Fatal(err)
	}
	src := bytes.NewReader(raw)
	if got := testing.AllocsPerRun(100, func() {
		src.Reset(raw)
		r2 := NewReader(src)
		r2.buf = r.buf // steady state: pooled scratch already sized
		if _, err := r2.ReadRequests(&reqs); err != nil {
			t.Fatal(err)
		}
	}); got > 2*ops+2 {
		t.Errorf("ReadRequests allocates %.1f per %d-op batch, want <= %d", got, ops, 2*ops+2)
	}
}

func TestCoherentTags(t *testing.T) {
	coherent := make([]Request, 4)
	for i := range coherent {
		coherent[i] = Request{
			ID: uint64(i), Type: OpGet,
			Tags: Tags{RemainingNanos: 9000, SlackNanos: 100, DemandNanos: int64(i + 1)},
		}
	}
	if !CoherentTags(coherent) {
		t.Fatal("frame with one RemainingNanos/SlackNanos must be coherent")
	}
	// Per-op demands may differ — only the scheduling decision inputs
	// must agree.
	split := append([]Request(nil), coherent...)
	split[2].Tags.RemainingNanos = 8000
	if CoherentTags(split) {
		t.Fatal("frame with differing RemainingNanos must not be coherent")
	}
	slackSplit := append([]Request(nil), coherent...)
	slackSplit[1].Tags.SlackNanos = 0
	if CoherentTags(slackSplit) {
		t.Fatal("frame with differing SlackNanos must not be coherent")
	}
	if !CoherentTags(nil) || !CoherentTags(coherent[:1]) {
		t.Fatal("empty and single-op frames are trivially coherent")
	}
}
