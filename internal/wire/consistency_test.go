package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestConsistencyRoundTrip pins the v4 trailing byte: levels survive
// single-op and batch frames, and a v3-pinned writer silently drops the
// field (old layout, decoded as the default level).
func TestConsistencyRoundTrip(t *testing.T) {
	levels := []Consistency{ConsistencyDefault, ConsistencyOne, ConsistencyQuorum, ConsistencyAll}
	for _, lvl := range levels {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		req := Request{ID: 1, Type: OpGet, Key: "k", Consistency: lvl}
		if err := w.WriteRequest(&req); err != nil {
			t.Fatalf("%s: WriteRequest: %v", lvl, err)
		}
		var got []Request
		version, err := NewReader(&buf).ReadRequests(&got)
		if err != nil {
			t.Fatalf("%s: ReadRequests: %v", lvl, err)
		}
		if version != Version4 {
			t.Fatalf("%s: version = %d, want %d", lvl, version, Version4)
		}
		if len(got) != 1 || got[0].Consistency != lvl {
			t.Fatalf("%s: decoded consistency %v", lvl, got[0].Consistency)
		}
	}

	// Batch frames carry the byte per operation.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	reqs := []Request{
		{ID: 1, Type: OpGet, Key: "a", Consistency: ConsistencyQuorum},
		{ID: 2, Type: OpGet, Key: "b", Consistency: ConsistencyAll},
	}
	if err := w.WriteBatch(reqs); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	var got []Request
	if _, err := NewReader(&buf).ReadRequests(&got); err != nil {
		t.Fatalf("ReadRequests: %v", err)
	}
	if got[0].Consistency != ConsistencyQuorum || got[1].Consistency != ConsistencyAll {
		t.Fatalf("batch consistency = %v, %v", got[0].Consistency, got[1].Consistency)
	}

	// A v3-pinned writer cannot carry the field; it must decode as the
	// default level, not garbage.
	buf.Reset()
	w = NewWriter(&buf)
	w.SetVersion(Version3)
	req := Request{ID: 9, Type: OpGet, Key: "k", Consistency: ConsistencyAll}
	if err := w.WriteRequest(&req); err != nil {
		t.Fatalf("v3 WriteRequest: %v", err)
	}
	got = got[:0]
	if _, err := NewReader(&buf).ReadRequests(&got); err != nil {
		t.Fatalf("v3 ReadRequests: %v", err)
	}
	if got[0].Consistency != ConsistencyDefault {
		t.Fatalf("v3 frame decoded consistency %v, want default", got[0].Consistency)
	}
}

// TestV4OpsRejectedOnOldFrames checks the membership/handoff/incr ops
// are valid only on v4 frames: an old-version frame claiming them is
// malformed, not silently misparsed.
func TestV4OpsRejectedOnOldFrames(t *testing.T) {
	for _, op := range []OpType{OpMembers, OpHandoff, OpIncr} {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteRequest(&Request{ID: 1, Type: op, Key: "k"}); err != nil {
			t.Fatalf("%s: v4 WriteRequest: %v", op, err)
		}
		var got []Request
		if _, err := NewReader(&buf).ReadRequests(&got); err != nil {
			t.Fatalf("%s rejected on v4 frame: %v", op, err)
		}

		// Forge the same body on a v3 frame: must be rejected.
		buf.Reset()
		w = NewWriter(&buf)
		if err := w.EncodeRequest(&Request{ID: 1, Type: op, Key: "k"}); err != nil {
			t.Fatalf("%s: encode: %v", op, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		raw[4] = Version3      // payload starts after the 4-byte length header
		raw = raw[:len(raw)-1] // strip the v4 consistency byte
		// Fix the length header for the stripped byte.
		n := len(raw) - 4
		raw[0], raw[1], raw[2], raw[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
		got = got[:0]
		if _, err := NewReader(bytes.NewReader(raw)).ReadRequests(&got); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("%s accepted on v3 frame: err=%v", op, err)
		}
	}
}

// TestBadConsistencyByteRejected forges a v4 frame whose trailing byte
// names no defined level.
func TestBadConsistencyByteRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRequest(&Request{ID: 1, Type: OpGet, Key: "k"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 200 // trailing consistency byte
	var got []Request
	if _, err := NewReader(bytes.NewReader(raw)).ReadRequests(&got); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("bad consistency byte accepted: err=%v", err)
	}
}

func TestParseConsistency(t *testing.T) {
	cases := map[string]Consistency{
		"": ConsistencyDefault, "default": ConsistencyDefault,
		"one": ConsistencyOne, "ONE": ConsistencyOne,
		"quorum": ConsistencyQuorum, "QUORUM": ConsistencyQuorum,
		"all": ConsistencyAll, "ALL": ConsistencyAll,
	}
	for in, want := range cases {
		got, err := ParseConsistency(in)
		if err != nil || got != want {
			t.Errorf("ParseConsistency(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseConsistency("two"); err == nil {
		t.Error("ParseConsistency accepted an unknown level")
	}
}
