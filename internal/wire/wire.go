// Package wire defines the binary protocol of the live key-value store:
// length-prefixed frames carrying per-operation requests (with DAS
// scheduling tags) and responses (with piggybacked feedback).
//
// Frame layout: a 4-byte big-endian payload length, then the payload.
// Payload fields use fixed-width big-endian integers and length-prefixed
// byte strings; layouts are versioned by the leading protocol byte.
//
// Version 3 adds batch request frames: one frame carries every
// operation of a multiget (or multiset) bound for one server, so the
// transport pays one syscall per destination instead of one per
// operation. Responses stay per-op so the server's scheduler can
// reorder them freely. Negotiation is per connection and zero-RTT: a
// Reader accepts v2, v3 and v4 frames, and a server echoes whatever
// version the client's frames carry, so old peers keep working
// unchanged. A newer client talking to an old server pins its Writer to
// the old version — batches then degrade to runs of single-op frames
// sharing one flush.
//
// Version 4 adds cluster-fabric fields: a per-operation consistency
// level byte (ONE/QUORUM/ALL, trailing the request body so v2/v3
// decoders are unaffected) and the OpMembers/OpHandoff operations that
// carry gossip membership documents and join-time range streaming.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Protocol versions. Version 2 added per-operation Timing (queue wait,
// service time, scheduling class) to responses; Version 3 added batch
// request frames; Version 4 added the trailing consistency-level byte
// and the membership/handoff operations. The single-op frame layouts of
// v2 and v3 are byte-identical apart from the version byte; v4 appends
// exactly one byte to the request body and leaves responses unchanged.
const (
	Version2 = 2
	Version3 = 3
	Version4 = 4
	// Version is the current (preferred) protocol version.
	Version = Version4
)

// MaxFrameSize bounds a frame payload (16 MiB) to protect servers from
// malformed or hostile length prefixes.
const MaxFrameSize = 16 << 20

// MaxBatchOps bounds the operation count of one batch frame. Clients
// split larger multigets into several frames; decoders reject frames
// claiming more.
const MaxBatchOps = 4096

// Op codes.
type OpType uint8

// Operation types. PUT carries a value; GET and DELETE only a key;
// STATS ignores the key and returns a JSON server-statistics document
// in the response value; CAS carries both the expected old value
// (OldValue) and the replacement (Value).
const (
	OpGet OpType = iota + 1
	OpPut
	OpDelete
	OpStats
	OpCAS
	// OpMembers (v4) ignores the key and returns a JSON MembersDoc in
	// the response value — the gossip control plane's view of the
	// cluster, served from the data plane so clients and kvctl need no
	// UDP access.
	OpMembers
	// OpHandoff (v4) streams one chunk of a shard's owned range during
	// join-time rebalancing: the request value carries a JSON
	// HandoffRequest cursor, the response value a HandoffHeader line
	// followed by store snapshot records (the WAL snapshot format).
	OpHandoff
	// OpIncr (v4) atomically adds a signed delta to an integer-valued
	// key: the request value carries the delta as 8 big-endian
	// two's-complement bytes, the response value the resulting total in
	// ASCII decimal (the same representation GET returns), with the new
	// version. An absent key counts from zero; a non-integer value fails
	// the op without mutating.
	OpIncr
)

// String returns the op's metric-label name ("get", "put", ...).
func (t OpType) String() string {
	switch t {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpStats:
		return "stats"
	case OpCAS:
		return "cas"
	case OpMembers:
		return "members"
	case OpHandoff:
		return "handoff"
	case OpIncr:
		return "incr"
	default:
		return fmt.Sprintf("op(%d)", uint8(t))
	}
}

// Consistency is a per-request replica-coordination level. Placement is
// client-side, so the level primarily steers the client's fan-out (how
// many of a key's R holders must answer); it is carried on the wire so
// servers can account per-level traffic and so operators can read a
// request's intent off a capture.
type Consistency uint8

// Consistency levels. The zero value defers to the configured default,
// which keeps v2/v3 frames (that cannot carry the byte) meaning "the
// pre-cluster behavior".
const (
	// ConsistencyDefault defers to the client's (or discovered server's)
	// configured default level.
	ConsistencyDefault Consistency = iota
	// ConsistencyOne acks after 1 replica responds: fastest, weakest.
	ConsistencyOne
	// ConsistencyQuorum acks after floor(R/2)+1 replicas respond:
	// read-your-writes when R(read) + W(write) > N holders.
	ConsistencyQuorum
	// ConsistencyAll acks after every holder responds: strongest,
	// unavailable under any single holder failure.
	ConsistencyAll
)

// String returns the level's flag-value name ("one", "quorum", "all").
func (c Consistency) String() string {
	switch c {
	case ConsistencyDefault:
		return "default"
	case ConsistencyOne:
		return "one"
	case ConsistencyQuorum:
		return "quorum"
	case ConsistencyAll:
		return "all"
	default:
		return fmt.Sprintf("consistency(%d)", uint8(c))
	}
}

// ParseConsistency maps a flag value ("one", "quorum", "all", or "" /
// "default") to its level.
func ParseConsistency(s string) (Consistency, error) {
	switch s {
	case "", "default":
		return ConsistencyDefault, nil
	case "one", "ONE":
		return ConsistencyOne, nil
	case "quorum", "QUORUM":
		return ConsistencyQuorum, nil
	case "all", "ALL":
		return ConsistencyAll, nil
	default:
		return 0, fmt.Errorf("wire: unknown consistency level %q (want one, quorum, or all)", s)
	}
}

// Status codes.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	StatusError
	// StatusCASMismatch reports a compare-and-swap whose expected old
	// value did not match the stored one.
	StatusCASMismatch
	// StatusDeadlineExceeded reports an operation the server shed
	// without executing because its client-supplied deadline had
	// already passed when it reached a worker (load shedding of doomed
	// work).
	StatusDeadlineExceeded
)

// Message kinds.
const (
	kindRequest  = 1
	kindResponse = 2
	// kindBatch (v3+) is a request frame carrying several operations
	// bound for the same server.
	kindBatch = 3
)

// Errors surfaced by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrBadMessage    = errors.New("wire: malformed message")
	ErrBatchTooLarge = errors.New("wire: batch exceeds operation limit")
)

// Tags is the scheduling metadata carried by every operation. Times are
// durations (nanoseconds), deliberately clock-free so client and server
// clocks never need to agree.
type Tags struct {
	// RemainingNanos is the request's speed-scaled bottleneck
	// processing time (DAS's SRPT-first key).
	RemainingNanos int64
	// SlackNanos is how long this op can be deferred before delaying
	// its request (DAS's LRPT-last key).
	SlackNanos int64
	// BottleneckNanos is the request's static demand bottleneck
	// (Rein-SBF's key).
	BottleneckNanos int64
	// DemandNanos is this op's estimated service demand.
	DemandNanos int64
	// Fanout is the request's operation count.
	Fanout uint32
	// SizeHintBytes is the op's expected payload size: the value length
	// for puts, the client's expected value size for gets (0 = unknown).
	// It is what lets the server's size-class admission classifier keep
	// a large get out of the small-op pool before the store has even
	// looked the key up.
	SizeHintBytes uint32
}

// CoherentTags reports whether every request of a batch frame carries
// the same scheduling decision inputs — one RemainingNanos (the
// SRPT-first key) and one SlackNanos (the LRPT-last key) for the whole
// frame. A batch-aware tagger (core.Tag grouping ops by server)
// produces coherent frames by construction; coherence is what lets the
// server admit the frame as a single scheduling unit instead of N
// independently ordered operations.
func CoherentTags(reqs []Request) bool {
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Tags.RemainingNanos != reqs[0].Tags.RemainingNanos ||
			reqs[i].Tags.SlackNanos != reqs[0].Tags.SlackNanos {
			return false
		}
	}
	return true
}

// Request is one key-value operation sent to a server.
type Request struct {
	ID    uint64
	Type  OpType
	Key   string
	Value []byte
	Tags  Tags
	// TTLNanos expires a PUT after this duration (0 = never).
	TTLNanos int64
	// OldValue is the expected current value for CAS operations (empty
	// means "expect the key to be absent").
	OldValue []byte
	// DeadlineNanos is the operation's remaining time budget at send
	// time (0 = none). Carried as a duration, not an instant, so client
	// and server clocks never need to agree; the server anchors it to
	// its own arrival clock and sheds the op with
	// StatusDeadlineExceeded if the budget is exhausted before service.
	DeadlineNanos int64
	// Version is the last-writer-wins tag of a replicated PUT (0 =
	// unversioned): the server applies the write only if it is not
	// older than the version it holds, making write fan-out and
	// read-repair idempotent and convergent.
	Version uint64
	// Consistency is the operation's replica-coordination level (v4+;
	// zero on older frames, meaning the configured default).
	Consistency Consistency
}

// Feedback is the server-state snapshot piggybacked on every response.
type Feedback struct {
	QueueLen     uint32
	BacklogNanos int64
	// SpeedMilli is the server's measured speed in thousandths of
	// nominal (1000 = nominal).
	SpeedMilli uint32
}

// Timing is the server-side timeline of one operation, reported on its
// response so clients can attribute request latency to queueing versus
// service — and flag the straggler of a multiget — without any extra
// RPCs. Like Tags, the fields are durations, never instants, so client
// and server clocks need not agree.
type Timing struct {
	// WaitNanos is how long the op sat in the scheduling queue
	// (arrival to service start).
	WaitNanos int64
	// ServiceNanos is how long service execution took. Zero for shed
	// operations (they never reach the store).
	ServiceNanos int64
	// SchedClass is the serving policy's classification of the op —
	// values mirror sched.Class (0 = the policy reported none).
	SchedClass uint8
}

// Response answers one Request.
type Response struct {
	ID       uint64
	Status   Status
	Value    []byte
	Feedback Feedback
	// Version is the stored version of the key a GET returned (or a
	// PUT resulted in); 0 for unversioned entries and non-data ops.
	Version uint64
	// Timing is the operation's server-side service timeline.
	Timing Timing
}

// ServerStats is the JSON document returned for OpStats requests.
type ServerStats struct {
	Server       int     `json:"server"`
	Served       uint64  `json:"served"`
	QueueLen     int     `json:"queueLen"`
	BacklogNanos int64   `json:"backlogNanos"`
	Speed        float64 `json:"speed"`
	Keys         int     `json:"keys"`
	UptimeNanos  int64   `json:"uptimeNanos"`
	Policy       string  `json:"policy"`
	// Replication is the replication factor the node was provisioned
	// for (informational; placement is client-side).
	Replication int `json:"replication,omitempty"`
	// ServedByOp breaks Served down by operation type ("get", "put",
	// "delete", "stats", "cas").
	ServedByOp map[string]uint64 `json:"servedByOp,omitempty"`
	// Shed counts operations dropped past their client deadline
	// without service (load shedding of doomed work).
	Shed uint64 `json:"shed,omitempty"`
	// Batches counts multi-operation request frames admitted; BatchOps
	// is the total operations they carried. BatchOps/Batches is the
	// mean admission batch width — how much per-frame and per-lock
	// overhead the batch data plane is amortizing.
	Batches  uint64 `json:"batches,omitempty"`
	BatchOps uint64 `json:"batchOps,omitempty"`
	// RespFrames counts response frames written and RespFlushes the
	// transport flushes (syscalls) that carried them;
	// RespFrames/RespFlushes is the flush coalescing factor.
	RespFrames  uint64 `json:"respFrames,omitempty"`
	RespFlushes uint64 `json:"respFlushes,omitempty"`
	// Errors counts operations answered with StatusError.
	Errors uint64 `json:"errors,omitempty"`
	// Connection-scaling gauges: OpenConns is the live connection
	// count, ConnsTotal the accepted-connection total over the
	// server's life, ConnGoroutines the goroutines servicing those
	// connections (one reader + one writer each), and Goroutines the
	// whole process's goroutine count at snapshot time.
	OpenConns      int    `json:"openConns,omitempty"`
	ConnsTotal     uint64 `json:"connsTotal,omitempty"`
	ConnGoroutines int    `json:"connGoroutines,omitempty"`
	Goroutines     int    `json:"goroutines,omitempty"`
	// InFlight is operations admitted to the queue but not yet
	// answered; ConnInFlightMax is the largest single connection's
	// share — together they say whether saturation is spread across
	// the pool or concentrated on a few connections.
	InFlight        int64 `json:"inFlight,omitempty"`
	ConnInFlightMax int64 `json:"connInFlightMax,omitempty"`
	// Decisions summarizes the scheduling policy's decision counters
	// (absent when the policy does not report them; only DAS does).
	Decisions *SchedDecisions `json:"decisions,omitempty"`
	// DemandError summarizes |actual service time − tagged demand
	// estimate| per served op: how well the client-side demand model
	// (the estimator's input) matches reality on this server.
	DemandError *DurationSummary `json:"demandError,omitempty"`
	// WAL reports the durability subsystem's state (absent when the
	// server runs without a write-ahead log).
	WAL *WALStats `json:"wal,omitempty"`
	// Pools reports the size-class execution split (absent when the
	// server runs one undivided worker pool).
	Pools *PoolStats `json:"pools,omitempty"`
}

// MembersDoc is the JSON document returned for OpMembers requests: the
// answering node's gossip view of the cluster plus its own rebalance
// lifecycle state.
type MembersDoc struct {
	// Self is the answering server's ID.
	Self int `json:"self"`
	// Lifecycle is the answering node's join lifecycle: "static" (no
	// gossip configured), "pending", "streaming", or "ready".
	Lifecycle string `json:"lifecycle"`
	// Members is the gossip table, sorted by ID. Empty when the node
	// runs statically configured (no gossip).
	Members []MemberInfo `json:"members,omitempty"`
}

// MemberInfo is one member row of a MembersDoc.
type MemberInfo struct {
	ID int `json:"id"`
	// GossipAddr is the member's UDP gossip endpoint, DataAddr its kv
	// TCP endpoint.
	GossipAddr string `json:"gossipAddr"`
	DataAddr   string `json:"dataAddr"`
	// State is the liveness verdict ("alive", "suspect", "dead", "left").
	State string `json:"state"`
	// Incarnation is the member's self-asserted epoch.
	Incarnation uint64 `json:"incarnation"`
	// Ready reports the member finished streaming its owned ranges.
	Ready bool `json:"ready"`
}

// HandoffRequest is the JSON request value of an OpHandoff operation: a
// cursor over one store shard, filtered to keys the requesting server
// owns under the answering server's current ring.
type HandoffRequest struct {
	// Shard is the store shard index being drained.
	Shard int `json:"shard"`
	// After resumes the scan strictly after this key ("" = shard start).
	After string `json:"after,omitempty"`
	// For is the requesting server's ID; the responder includes only
	// keys that server holds (primary or replica) under its ring.
	For int `json:"for"`
}

// HandoffHeader is the first JSON line of an OpHandoff response value;
// store snapshot records (one JSON object per line, the WAL snapshot
// format) follow it.
type HandoffHeader struct {
	// More reports the shard scan is not finished; resume with
	// After=Next.
	More bool `json:"more"`
	// Next is the resume cursor when More is set.
	Next string `json:"next,omitempty"`
	// Count is the number of records following the header.
	Count int `json:"count"`
}

// PoolStats is the size-class split's section of the stats document:
// per-pool queue depth, backlog, worker occupancy, and the admission
// classifier's routing decisions.
type PoolStats struct {
	// ThresholdBytes is the classifier's current small/large boundary.
	ThresholdBytes int64 `json:"thresholdBytes"`
	// SmallWorkers and LargeWorkers are the static worker partition.
	SmallWorkers int `json:"smallWorkers"`
	LargeWorkers int `json:"largeWorkers"`
	// SmallQueueLen/LargeQueueLen are the per-pool queue depths.
	SmallQueueLen int `json:"smallQueueLen"`
	LargeQueueLen int `json:"largeQueueLen"`
	// SmallBacklogNanos/LargeBacklogNanos are the per-pool queued
	// service demands.
	SmallBacklogNanos int64 `json:"smallBacklogNanos"`
	LargeBacklogNanos int64 `json:"largeBacklogNanos"`
	// SmallBusy/LargeBusy are the workers of each pool currently
	// executing an operation (occupancy).
	SmallBusy int `json:"smallBusy"`
	LargeBusy int `json:"largeBusy"`
	// SmallRouted/LargeRouted count admission routing decisions; Stolen
	// counts small-pool ops drained by an idle large pool through the
	// work-stealing path.
	SmallRouted uint64 `json:"smallRouted"`
	LargeRouted uint64 `json:"largeRouted"`
	Stolen      uint64 `json:"stolen"`
}

// WALStats is the write-ahead log's section of the stats document.
type WALStats struct {
	// Segments counts live log segment files (sealed plus active).
	Segments int `json:"segments"`
	// Bytes is the byte total across live segments.
	Bytes int64 `json:"bytes"`
	// LastSeq is the highest log sequence number assigned.
	LastSeq uint64 `json:"lastSeq"`
	// SnapshotSeq is the sequence covered by the newest on-disk
	// snapshot (0 = no snapshot yet).
	SnapshotSeq uint64 `json:"snapshotSeq,omitempty"`
	// Appended counts records accepted since the log opened.
	Appended uint64 `json:"appended"`
	// Fsyncs counts fsync calls on the append path since open.
	Fsyncs uint64 `json:"fsyncs"`
	// Policy is the sync policy string ("always", "batch:2ms", "none").
	Policy string `json:"policy"`
	// FsyncLatency is the append-path fsync latency distribution.
	FsyncLatency *DurationSummary `json:"fsyncLatency,omitempty"`
	// BatchRecords is the group-commit batch size distribution —
	// records persisted per committer write; the mean is the fsync
	// amortization factor.
	BatchRecords *ValueSummary `json:"batchRecords,omitempty"`
	// CoalescedOps / CoalescedRecords / CoalesceWindows describe the
	// coalesce sync policy's work: mutations folded into per-key
	// accumulators, records those accumulators flushed to disk, and
	// commit windows closed. Ops/Records is the write amplification
	// saved; all zero under the other policies.
	CoalescedOps     uint64 `json:"coalescedOps,omitempty"`
	CoalescedRecords uint64 `json:"coalescedRecords,omitempty"`
	CoalesceWindows  uint64 `json:"coalesceWindows,omitempty"`
	// WindowKeys is the distinct-keys-per-window distribution under
	// coalesce — the I in the bytes-scale-with-I claim.
	WindowKeys *ValueSummary `json:"windowKeys,omitempty"`
}

// ValueSummary is DurationSummary's unit-less sibling for
// distributions that are counts rather than times.
type ValueSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// SchedDecisions mirrors sched.DecisionStats in the stats document.
type SchedDecisions struct {
	Pushed       uint64 `json:"pushed"`
	SRPTFirst    uint64 `json:"srptFirst"`
	LRPTDemoted  uint64 `json:"lrptDemoted"`
	NearBoundary uint64 `json:"nearBoundary"`
	Promotions   uint64 `json:"promotions"`
}

// DurationSummary is a compact latency-distribution summary carried in
// the stats document (nanosecond units, JSON-friendly).
type DurationSummary struct {
	Count     uint64 `json:"count"`
	MeanNanos int64  `json:"meanNanos"`
	P50Nanos  int64  `json:"p50Nanos"`
	P99Nanos  int64  `json:"p99Nanos"`
	MaxNanos  int64  `json:"maxNanos"`
}

// scratchPool recycles encode/decode scratch buffers across Writer and
// Reader lifetimes, so short-lived connections (redials, tests, chaos
// churn) stop paying a fresh buffer growth curve each. Buffers are
// handed back via Release.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getScratch() []byte {
	return (*scratchPool.Get().(*[]byte))[:0]
}

func putScratch(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	scratchPool.Put(&b)
}

// Writer encodes frames onto an io.Writer. Not safe for concurrent use.
type Writer struct {
	w       *bufio.Writer
	buf     []byte
	hdr     [4]byte // frame length header; a field so it never escapes per frame
	version byte
}

// NewWriter wraps w, emitting the current protocol version.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), version: Version}
}

// SetVersion pins the protocol version this writer emits. Servers call
// it to echo the version a client's frames carry; clients pin Version2
// to interoperate with old servers. Unsupported versions are ignored.
func (w *Writer) SetVersion(v byte) {
	if v == Version2 || v == Version3 || v == Version4 {
		w.version = v
	}
}

// WireVersion returns the protocol version the writer emits.
func (w *Writer) WireVersion() byte { return w.version }

// Release returns the writer's scratch buffer to the shared pool. Call
// it once, after the last Write/Encode; the writer remains usable and
// will lazily re-acquire scratch if written to again.
func (w *Writer) Release() {
	putScratch(w.buf)
	w.buf = nil
}

// scratch readies the reusable encode buffer.
func (w *Writer) scratch() []byte {
	if w.buf == nil {
		w.buf = getScratch()
	}
	return w.buf[:0]
}

// appendRequestBody encodes one operation's body (everything after the
// version and kind bytes) — the layout shared by single-op and batch
// frames, identical in v2 and v3; v4 appends the trailing consistency
// byte.
func appendRequestBody(buf []byte, r *Request, version byte) []byte {
	buf = append(buf, byte(r.Type))
	buf = binary.BigEndian.AppendUint64(buf, r.ID)
	buf = appendBytes(buf, []byte(r.Key))
	buf = appendBytes(buf, r.Value)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Tags.RemainingNanos))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Tags.SlackNanos))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Tags.BottleneckNanos))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Tags.DemandNanos))
	buf = binary.BigEndian.AppendUint32(buf, r.Tags.Fanout)
	buf = binary.BigEndian.AppendUint32(buf, r.Tags.SizeHintBytes)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.TTLNanos))
	buf = appendBytes(buf, r.OldValue)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.DeadlineNanos))
	buf = binary.BigEndian.AppendUint64(buf, r.Version)
	if version >= Version4 {
		buf = append(buf, byte(r.Consistency))
	}
	return buf
}

// WriteRequest encodes and flushes one request frame.
func (w *Writer) WriteRequest(r *Request) error {
	if err := w.EncodeRequest(r); err != nil {
		return err
	}
	return w.Flush()
}

// EncodeRequest buffers one request frame without flushing.
func (w *Writer) EncodeRequest(r *Request) error {
	buf := w.scratch()
	buf = append(buf, w.version, kindRequest)
	buf = appendRequestBody(buf, r, w.version)
	w.buf = buf
	return w.writeFrame()
}

// WriteBatch encodes every request as one v3 batch frame and flushes
// once. On a writer pinned to Version2 the batch degrades to a run of
// single-op v2 frames sharing the one flush — old servers parse them
// unchanged, and the syscall coalescing is preserved.
func (w *Writer) WriteBatch(reqs []Request) error {
	if len(reqs) == 0 {
		return nil
	}
	if len(reqs) == 1 {
		return w.WriteRequest(&reqs[0])
	}
	if len(reqs) > MaxBatchOps {
		return ErrBatchTooLarge
	}
	if w.version < Version3 {
		for i := range reqs {
			if err := w.EncodeRequest(&reqs[i]); err != nil {
				return err
			}
		}
		return w.Flush()
	}
	buf := w.scratch()
	buf = append(buf, w.version, kindBatch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(reqs)))
	for i := range reqs {
		buf = appendRequestBody(buf, &reqs[i], w.version)
	}
	w.buf = buf
	if err := w.writeFrame(); err != nil {
		return err
	}
	return w.Flush()
}

// WriteResponse encodes and flushes one response frame.
func (w *Writer) WriteResponse(r *Response) error {
	if err := w.EncodeResponse(r); err != nil {
		return err
	}
	return w.Flush()
}

// EncodeResponse buffers one response frame without flushing — the
// server's per-connection writer coalesces many responses into one
// flush (one syscall) with an explicit Flush after a drain.
func (w *Writer) EncodeResponse(r *Response) error {
	buf := w.scratch()
	buf = append(buf, w.version, kindResponse, byte(r.Status))
	buf = binary.BigEndian.AppendUint64(buf, r.ID)
	buf = appendBytes(buf, r.Value)
	buf = binary.BigEndian.AppendUint32(buf, r.Feedback.QueueLen)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Feedback.BacklogNanos))
	buf = binary.BigEndian.AppendUint32(buf, r.Feedback.SpeedMilli)
	buf = binary.BigEndian.AppendUint64(buf, r.Version)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Timing.WaitNanos))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Timing.ServiceNanos))
	buf = append(buf, r.Timing.SchedClass)
	w.buf = buf
	return w.writeFrame()
}

// Flush pushes buffered frames to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// writeFrame emits the length header and the buffered payload into the
// underlying buffered writer without flushing.
func (w *Writer) writeFrame() error {
	if len(w.buf) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(w.hdr[:], uint32(len(w.buf)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	return nil
}

// Reader decodes frames from an io.Reader. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Release returns the reader's scratch buffer to the shared pool. Call
// it once, after the last Read; the reader remains usable and will
// lazily re-acquire scratch if read from again.
func (r *Reader) Release() {
	putScratch(r.buf)
	r.buf = nil
}

// next reads one frame payload into the reusable buffer.
func (r *Reader) next() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if r.buf == nil {
		r.buf = getScratch()
	}
	if cap(r.buf) < int(n) {
		putScratch(r.buf)
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return buf, nil
}

// versionOK reports whether v is a protocol version this reader
// understands (v2 and v3 single-op layouts are identical; v4 appends a
// consistency byte to requests).
func versionOK(v byte) bool { return v == Version2 || v == Version3 || v == Version4 }

// decodeRequestBody decodes one operation body (leading with its op
// type byte) into req, reusing req's Value/OldValue backing arrays.
func decodeRequestBody(d *decoder, req *Request, version byte) error {
	req.Type = OpType(d.byte())
	maxOp := OpCAS
	if version >= Version4 {
		maxOp = OpIncr
	}
	if req.Type < OpGet || req.Type > maxOp {
		return ErrBadMessage
	}
	req.ID = d.u64()
	req.Key = string(d.bytes())
	req.Value = append(req.Value[:0], d.bytes()...)
	req.Tags.RemainingNanos = int64(d.u64())
	req.Tags.SlackNanos = int64(d.u64())
	req.Tags.BottleneckNanos = int64(d.u64())
	req.Tags.DemandNanos = int64(d.u64())
	req.Tags.Fanout = d.u32()
	req.Tags.SizeHintBytes = d.u32()
	req.TTLNanos = int64(d.u64())
	req.OldValue = append(req.OldValue[:0], d.bytes()...)
	req.DeadlineNanos = int64(d.u64())
	req.Version = d.u64()
	if version >= Version4 {
		req.Consistency = Consistency(d.byte())
		if req.Consistency > ConsistencyAll {
			return ErrBadMessage
		}
	} else {
		req.Consistency = ConsistencyDefault
	}
	if d.err != nil {
		return ErrBadMessage
	}
	return nil
}

// minRequestBody is the encoded size of a v2/v3 request body whose key,
// value, and old value are all empty — the decoder's plausibility floor
// for batch operation counts. v4 bodies carry one more byte
// (consistency).
const minRequestBody = 1 + 8 + 4 + 4 + 40 + 8 + 4 + 8 + 8

// minBodyFor returns the plausibility floor for one request body at the
// given protocol version.
func minBodyFor(version byte) int {
	if version >= Version4 {
		return minRequestBody + 1
	}
	return minRequestBody
}

// ReadRequest decodes the next frame as a single-operation Request
// (batch frames are rejected; servers use ReadRequests).
func (r *Reader) ReadRequest(req *Request) error {
	buf, err := r.next()
	if err != nil {
		return err
	}
	d := decoder{buf: buf}
	version, kind := d.byte(), d.byte()
	if !versionOK(version) || kind != kindRequest {
		return ErrBadMessage
	}
	return decodeRequestBody(&d, req, version)
}

// ReadRequests decodes the next frame — a single-op request or a v3
// batch — into *reqs, reusing its backing array and each element's
// byte buffers across calls. It returns the frame's protocol version so
// servers can echo it on responses.
func (r *Reader) ReadRequests(reqs *[]Request) (version byte, err error) {
	buf, err := r.next()
	if err != nil {
		return 0, err
	}
	d := decoder{buf: buf}
	version = d.byte()
	kind := d.byte()
	if !versionOK(version) {
		return 0, ErrBadMessage
	}
	var count int
	switch kind {
	case kindRequest:
		count = 1
	case kindBatch:
		if version < Version3 {
			return 0, ErrBadMessage
		}
		n := d.u32()
		if d.err != nil || n == 0 || n > MaxBatchOps || int(n)*minBodyFor(version) > d.remain() {
			return 0, ErrBadMessage
		}
		count = int(n)
	default:
		return 0, ErrBadMessage
	}
	batch := (*reqs)[:cap(*reqs)]
	for len(batch) < count {
		batch = append(batch, Request{})
	}
	batch = batch[:count]
	*reqs = batch
	for i := range batch {
		if err := decodeRequestBody(&d, &batch[i], version); err != nil {
			*reqs = batch[:0]
			return 0, err
		}
	}
	return version, nil
}

// ReadResponse decodes the next frame as a Response.
func (r *Reader) ReadResponse(resp *Response) error {
	buf, err := r.next()
	if err != nil {
		return err
	}
	d := decoder{buf: buf}
	version, kind, status := d.byte(), d.byte(), d.byte()
	if !versionOK(version) || kind != kindResponse {
		return ErrBadMessage
	}
	resp.Status = Status(status)
	if resp.Status < StatusOK || resp.Status > StatusDeadlineExceeded {
		return ErrBadMessage
	}
	resp.ID = d.u64()
	resp.Value = append(resp.Value[:0], d.bytes()...)
	resp.Feedback.QueueLen = d.u32()
	resp.Feedback.BacklogNanos = int64(d.u64())
	resp.Feedback.SpeedMilli = d.u32()
	resp.Version = d.u64()
	resp.Timing.WaitNanos = int64(d.u64())
	resp.Timing.ServiceNanos = int64(d.u64())
	resp.Timing.SchedClass = d.byte()
	if d.err != nil {
		return ErrBadMessage
	}
	return nil
}

func appendBytes(buf, b []byte) []byte {
	if len(b) > math.MaxUint32 {
		b = b[:math.MaxUint32]
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// decoder is a cursor over a frame payload that latches the first error.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) remain() int { return len(d.buf) - d.off }

func (d *decoder) byte() byte {
	if d.err != nil || d.remain() < 1 {
		d.err = ErrBadMessage
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.remain() < 4 {
		d.err = ErrBadMessage
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.remain() < 8 {
		d.err = ErrBadMessage
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || d.remain() < int(n) {
		d.err = ErrBadMessage
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}
