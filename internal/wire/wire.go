// Package wire defines the binary protocol of the live key-value store:
// length-prefixed frames carrying per-operation requests (with DAS
// scheduling tags) and responses (with piggybacked feedback).
//
// Frame layout: a 4-byte big-endian payload length, then the payload.
// Payload fields use fixed-width big-endian integers and length-prefixed
// byte strings; layouts are versioned by the leading protocol byte.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version byte. Version 2 added per-operation
// Timing (queue wait, service time, scheduling class) to responses.
const Version = 2

// MaxFrameSize bounds a frame payload (16 MiB) to protect servers from
// malformed or hostile length prefixes.
const MaxFrameSize = 16 << 20

// Op codes.
type OpType uint8

// Operation types. PUT carries a value; GET and DELETE only a key;
// STATS ignores the key and returns a JSON server-statistics document
// in the response value; CAS carries both the expected old value
// (OldValue) and the replacement (Value).
const (
	OpGet OpType = iota + 1
	OpPut
	OpDelete
	OpStats
	OpCAS
)

// String returns the op's metric-label name ("get", "put", ...).
func (t OpType) String() string {
	switch t {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpStats:
		return "stats"
	case OpCAS:
		return "cas"
	default:
		return fmt.Sprintf("op(%d)", uint8(t))
	}
}

// Status codes.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	StatusError
	// StatusCASMismatch reports a compare-and-swap whose expected old
	// value did not match the stored one.
	StatusCASMismatch
	// StatusDeadlineExceeded reports an operation the server shed
	// without executing because its client-supplied deadline had
	// already passed when it reached a worker (load shedding of doomed
	// work).
	StatusDeadlineExceeded
)

// Message kinds.
const (
	kindRequest  = 1
	kindResponse = 2
)

// Errors surfaced by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrBadMessage    = errors.New("wire: malformed message")
)

// Tags is the scheduling metadata carried by every operation. Times are
// durations (nanoseconds), deliberately clock-free so client and server
// clocks never need to agree.
type Tags struct {
	// RemainingNanos is the request's speed-scaled bottleneck
	// processing time (DAS's SRPT-first key).
	RemainingNanos int64
	// SlackNanos is how long this op can be deferred before delaying
	// its request (DAS's LRPT-last key).
	SlackNanos int64
	// BottleneckNanos is the request's static demand bottleneck
	// (Rein-SBF's key).
	BottleneckNanos int64
	// DemandNanos is this op's estimated service demand.
	DemandNanos int64
	// Fanout is the request's operation count.
	Fanout uint32
}

// Request is one key-value operation sent to a server.
type Request struct {
	ID    uint64
	Type  OpType
	Key   string
	Value []byte
	Tags  Tags
	// TTLNanos expires a PUT after this duration (0 = never).
	TTLNanos int64
	// OldValue is the expected current value for CAS operations (empty
	// means "expect the key to be absent").
	OldValue []byte
	// DeadlineNanos is the operation's remaining time budget at send
	// time (0 = none). Carried as a duration, not an instant, so client
	// and server clocks never need to agree; the server anchors it to
	// its own arrival clock and sheds the op with
	// StatusDeadlineExceeded if the budget is exhausted before service.
	DeadlineNanos int64
	// Version is the last-writer-wins tag of a replicated PUT (0 =
	// unversioned): the server applies the write only if it is not
	// older than the version it holds, making write fan-out and
	// read-repair idempotent and convergent.
	Version uint64
}

// Feedback is the server-state snapshot piggybacked on every response.
type Feedback struct {
	QueueLen     uint32
	BacklogNanos int64
	// SpeedMilli is the server's measured speed in thousandths of
	// nominal (1000 = nominal).
	SpeedMilli uint32
}

// Timing is the server-side timeline of one operation, reported on its
// response so clients can attribute request latency to queueing versus
// service — and flag the straggler of a multiget — without any extra
// RPCs. Like Tags, the fields are durations, never instants, so client
// and server clocks need not agree.
type Timing struct {
	// WaitNanos is how long the op sat in the scheduling queue
	// (arrival to service start).
	WaitNanos int64
	// ServiceNanos is how long service execution took. Zero for shed
	// operations (they never reach the store).
	ServiceNanos int64
	// SchedClass is the serving policy's classification of the op —
	// values mirror sched.Class (0 = the policy reported none).
	SchedClass uint8
}

// Response answers one Request.
type Response struct {
	ID       uint64
	Status   Status
	Value    []byte
	Feedback Feedback
	// Version is the stored version of the key a GET returned (or a
	// PUT resulted in); 0 for unversioned entries and non-data ops.
	Version uint64
	// Timing is the operation's server-side service timeline.
	Timing Timing
}

// ServerStats is the JSON document returned for OpStats requests.
type ServerStats struct {
	Server       int     `json:"server"`
	Served       uint64  `json:"served"`
	QueueLen     int     `json:"queueLen"`
	BacklogNanos int64   `json:"backlogNanos"`
	Speed        float64 `json:"speed"`
	Keys         int     `json:"keys"`
	UptimeNanos  int64   `json:"uptimeNanos"`
	Policy       string  `json:"policy"`
	// Replication is the replication factor the node was provisioned
	// for (informational; placement is client-side).
	Replication int `json:"replication,omitempty"`
	// ServedByOp breaks Served down by operation type ("get", "put",
	// "delete", "stats", "cas").
	ServedByOp map[string]uint64 `json:"servedByOp,omitempty"`
	// Shed counts operations dropped past their client deadline
	// without service (load shedding of doomed work).
	Shed uint64 `json:"shed,omitempty"`
	// Errors counts operations answered with StatusError.
	Errors uint64 `json:"errors,omitempty"`
	// Decisions summarizes the scheduling policy's decision counters
	// (absent when the policy does not report them; only DAS does).
	Decisions *SchedDecisions `json:"decisions,omitempty"`
	// DemandError summarizes |actual service time − tagged demand
	// estimate| per served op: how well the client-side demand model
	// (the estimator's input) matches reality on this server.
	DemandError *DurationSummary `json:"demandError,omitempty"`
	// WAL reports the durability subsystem's state (absent when the
	// server runs without a write-ahead log).
	WAL *WALStats `json:"wal,omitempty"`
}

// WALStats is the write-ahead log's section of the stats document.
type WALStats struct {
	// Segments counts live log segment files (sealed plus active).
	Segments int `json:"segments"`
	// Bytes is the byte total across live segments.
	Bytes int64 `json:"bytes"`
	// LastSeq is the highest log sequence number assigned.
	LastSeq uint64 `json:"lastSeq"`
	// SnapshotSeq is the sequence covered by the newest on-disk
	// snapshot (0 = no snapshot yet).
	SnapshotSeq uint64 `json:"snapshotSeq,omitempty"`
	// Appended counts records accepted since the log opened.
	Appended uint64 `json:"appended"`
	// Fsyncs counts fsync calls on the append path since open.
	Fsyncs uint64 `json:"fsyncs"`
	// Policy is the sync policy string ("always", "batch:2ms", "none").
	Policy string `json:"policy"`
	// FsyncLatency is the append-path fsync latency distribution.
	FsyncLatency *DurationSummary `json:"fsyncLatency,omitempty"`
	// BatchRecords is the group-commit batch size distribution —
	// records persisted per committer write; the mean is the fsync
	// amortization factor.
	BatchRecords *ValueSummary `json:"batchRecords,omitempty"`
}

// ValueSummary is DurationSummary's unit-less sibling for
// distributions that are counts rather than times.
type ValueSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// SchedDecisions mirrors sched.DecisionStats in the stats document.
type SchedDecisions struct {
	Pushed       uint64 `json:"pushed"`
	SRPTFirst    uint64 `json:"srptFirst"`
	LRPTDemoted  uint64 `json:"lrptDemoted"`
	NearBoundary uint64 `json:"nearBoundary"`
	Promotions   uint64 `json:"promotions"`
}

// DurationSummary is a compact latency-distribution summary carried in
// the stats document (nanosecond units, JSON-friendly).
type DurationSummary struct {
	Count     uint64 `json:"count"`
	MeanNanos int64  `json:"meanNanos"`
	P50Nanos  int64  `json:"p50Nanos"`
	P99Nanos  int64  `json:"p99Nanos"`
	MaxNanos  int64  `json:"maxNanos"`
}

// Writer encodes frames onto an io.Writer. Not safe for concurrent use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteRequest encodes and flushes one request frame.
func (w *Writer) WriteRequest(r *Request) error {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, Version, kindRequest, byte(r.Type))
	w.buf = binary.BigEndian.AppendUint64(w.buf, r.ID)
	w.buf = appendBytes(w.buf, []byte(r.Key))
	w.buf = appendBytes(w.buf, r.Value)
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(r.Tags.RemainingNanos))
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(r.Tags.SlackNanos))
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(r.Tags.BottleneckNanos))
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(r.Tags.DemandNanos))
	w.buf = binary.BigEndian.AppendUint32(w.buf, r.Tags.Fanout)
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(r.TTLNanos))
	w.buf = appendBytes(w.buf, r.OldValue)
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(r.DeadlineNanos))
	w.buf = binary.BigEndian.AppendUint64(w.buf, r.Version)
	return w.flushFrame()
}

// WriteResponse encodes and flushes one response frame.
func (w *Writer) WriteResponse(r *Response) error {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, Version, kindResponse, byte(r.Status))
	w.buf = binary.BigEndian.AppendUint64(w.buf, r.ID)
	w.buf = appendBytes(w.buf, r.Value)
	w.buf = binary.BigEndian.AppendUint32(w.buf, r.Feedback.QueueLen)
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(r.Feedback.BacklogNanos))
	w.buf = binary.BigEndian.AppendUint32(w.buf, r.Feedback.SpeedMilli)
	w.buf = binary.BigEndian.AppendUint64(w.buf, r.Version)
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(r.Timing.WaitNanos))
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(r.Timing.ServiceNanos))
	w.buf = append(w.buf, r.Timing.SchedClass)
	return w.flushFrame()
}

func (w *Writer) flushFrame() error {
	if len(w.buf) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(w.buf)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Reader decodes frames from an io.Reader. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// next reads one frame payload into the reusable buffer.
func (r *Reader) next() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return buf, nil
}

// ReadRequest decodes the next frame as a Request.
func (r *Reader) ReadRequest(req *Request) error {
	buf, err := r.next()
	if err != nil {
		return err
	}
	d := decoder{buf: buf}
	version, kind, op := d.byte(), d.byte(), d.byte()
	if version != Version || kind != kindRequest {
		return ErrBadMessage
	}
	req.Type = OpType(op)
	if req.Type < OpGet || req.Type > OpCAS {
		return ErrBadMessage
	}
	req.ID = d.u64()
	req.Key = string(d.bytes())
	req.Value = append(req.Value[:0], d.bytes()...)
	req.Tags.RemainingNanos = int64(d.u64())
	req.Tags.SlackNanos = int64(d.u64())
	req.Tags.BottleneckNanos = int64(d.u64())
	req.Tags.DemandNanos = int64(d.u64())
	req.Tags.Fanout = d.u32()
	req.TTLNanos = int64(d.u64())
	req.OldValue = append(req.OldValue[:0], d.bytes()...)
	req.DeadlineNanos = int64(d.u64())
	req.Version = d.u64()
	if d.err != nil {
		return ErrBadMessage
	}
	return nil
}

// ReadResponse decodes the next frame as a Response.
func (r *Reader) ReadResponse(resp *Response) error {
	buf, err := r.next()
	if err != nil {
		return err
	}
	d := decoder{buf: buf}
	version, kind, status := d.byte(), d.byte(), d.byte()
	if version != Version || kind != kindResponse {
		return ErrBadMessage
	}
	resp.Status = Status(status)
	if resp.Status < StatusOK || resp.Status > StatusDeadlineExceeded {
		return ErrBadMessage
	}
	resp.ID = d.u64()
	resp.Value = append(resp.Value[:0], d.bytes()...)
	resp.Feedback.QueueLen = d.u32()
	resp.Feedback.BacklogNanos = int64(d.u64())
	resp.Feedback.SpeedMilli = d.u32()
	resp.Version = d.u64()
	resp.Timing.WaitNanos = int64(d.u64())
	resp.Timing.ServiceNanos = int64(d.u64())
	resp.Timing.SchedClass = d.byte()
	if d.err != nil {
		return ErrBadMessage
	}
	return nil
}

func appendBytes(buf, b []byte) []byte {
	if len(b) > math.MaxUint32 {
		b = b[:math.MaxUint32]
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// decoder is a cursor over a frame payload that latches the first error.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) remain() int { return len(d.buf) - d.off }

func (d *decoder) byte() byte {
	if d.err != nil || d.remain() < 1 {
		d.err = ErrBadMessage
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.remain() < 4 {
		d.err = ErrBadMessage
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.remain() < 8 {
		d.err = ErrBadMessage
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || d.remain() < int(n) {
		d.err = ErrBadMessage
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}
