package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// skipInfo is one unreadable span a scanner stepped over.
type skipInfo struct {
	offset int64
	bytes  int64
	err    error
}

// segScan is everything one segment scan learns.
type segScan struct {
	records       int
	firstSeq      uint64 // first valid record's seq (0 = none)
	lastSeq       uint64 // last valid record's seq anywhere in the file
	prefixLastSeq uint64 // last valid seq before the first problem
	goodBytes     int64  // clean prefix length (file size when clean)
	size          int64
	skips         []skipInfo
	torn          bool // ended on a short or implausible frame
}

// scanSegmentFile reads one segment, calling cb (when non-nil) for
// every record that passes its checksum. A frame with a bad CRC or an
// unparseable payload is skipped over (its declared length is bounded
// by the bytes remaining, so resynchronization is safe) and reported; a
// frame cut short or with an implausible length ends the scan — at the
// tail of the final segment that is the torn-write signature.
func scanSegmentFile(path string, cb func(Record) error) (segScan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return segScan{}, fmt.Errorf("wal: read segment %s: %w", path, err)
	}
	res := segScan{size: int64(len(b))}
	res.goodBytes = res.size
	offset := int64(0)
	clean := true
	for offset < int64(len(b)) {
		rec, n, derr := decodeFrame(b[offset:])
		switch {
		case derr == nil:
			if res.records == 0 {
				res.firstSeq = rec.Seq
			}
			res.records++
			res.lastSeq = rec.Seq
			if clean {
				res.prefixLastSeq = rec.Seq
			}
			if cb != nil {
				if cerr := cb(rec); cerr != nil {
					return res, cerr
				}
			}
			offset += int64(n)
		case n > 0: // bad CRC or malformed payload: skippable
			if clean {
				clean = false
				res.goodBytes = offset
			}
			res.skips = append(res.skips, skipInfo{offset: offset, bytes: int64(n), err: derr})
			offset += int64(n)
		default: // short or implausible frame: nothing to resync on
			if clean {
				clean = false
				res.goodBytes = offset
			}
			res.torn = true
			res.skips = append(res.skips, skipInfo{offset: offset, bytes: int64(len(b)) - offset, err: derr})
			offset = int64(len(b))
		}
	}
	return res, nil
}

// SkippedRange reports one unreadable span recovery stepped over in a
// sealed segment (skip-and-report: the rest of the log still replays).
type SkippedRange struct {
	Segment string
	Offset  int64
	Bytes   int64
	Reason  string
}

// RecoveryReport summarizes one Recover pass.
type RecoveryReport struct {
	// SnapshotLoaded reports whether an on-disk snapshot seeded the
	// store, and SnapshotSeq the sequence it covers.
	SnapshotLoaded bool
	SnapshotSeq    uint64
	// SegmentsScanned counts segment files replayed (fully-covered
	// segments are skipped without a scan).
	SegmentsScanned int
	// RecordsApplied counts records handed to apply.
	RecordsApplied uint64
	// TornTail reports that the final segment ended in a partial record
	// — the expected artifact of crashing mid-append — which was
	// truncated away at Open.
	TornTail bool
	// Skipped lists corrupt spans stepped over in sealed segments.
	Skipped []SkippedRange
}

// String renders the report for startup logs.
func (r *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d record(s) from %d segment(s)", r.RecordsApplied, r.SegmentsScanned)
	if r.SnapshotLoaded {
		fmt.Fprintf(&b, " over snapshot @%d", r.SnapshotSeq)
	}
	if r.TornTail {
		b.WriteString(", torn tail truncated")
	}
	if len(r.Skipped) > 0 {
		fmt.Fprintf(&b, ", %d corrupt span(s) skipped", len(r.Skipped))
	}
	return b.String()
}

// Recover replays the log into the caller's store: loadSnapshot (when
// non-nil and a snapshot exists) is handed the newest snapshot's
// contents, then apply sees every record past the snapshot in sequence
// order. It must be called before the first Append. Corrupt spans in
// sealed segments are skipped and reported; a torn final record was
// already truncated at Open and is flagged here.
func (w *WAL) Recover(loadSnapshot func(io.Reader) error, apply func(Record) error) (*RecoveryReport, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if w.recovered || w.appended.Load() > 0 {
		w.mu.Unlock()
		return nil, fmt.Errorf("wal: Recover must run once, before the first Append")
	}
	w.recovered = true
	torn := w.tornAtOpen
	w.mu.Unlock()

	w.fmu.Lock()
	segments := append([]segmentMeta(nil), w.sealed...)
	snapSeq, hasSnap := w.snapSeq, w.hasSnap
	w.fmu.Unlock()

	report := &RecoveryReport{SnapshotSeq: snapSeq, TornTail: torn}
	if hasSnap && loadSnapshot != nil {
		f, err := os.Open(filepath.Join(w.opts.Dir, snapName(snapSeq)))
		if err != nil {
			return nil, fmt.Errorf("wal: open snapshot: %w", err)
		}
		lerr := loadSnapshot(f)
		_ = f.Close()
		if lerr != nil {
			return nil, fmt.Errorf("wal: load snapshot: %w", lerr)
		}
		report.SnapshotLoaded = true
	}
	for _, m := range segments {
		if hasSnap && m.lastSeq <= snapSeq {
			continue // fully covered by the snapshot
		}
		report.SegmentsScanned++
		res, err := scanSegmentFile(m.path, func(rec Record) error {
			if hasSnap && rec.Seq <= snapSeq {
				return nil
			}
			if apply != nil {
				if aerr := apply(rec); aerr != nil {
					return fmt.Errorf("wal: apply record %d: %w", rec.Seq, aerr)
				}
			}
			report.RecordsApplied++
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, s := range res.skips {
			report.Skipped = append(report.Skipped, SkippedRange{
				Segment: filepath.Base(m.path), Offset: s.offset, Bytes: s.bytes, Reason: s.err.Error(),
			})
		}
	}
	return report, nil
}

// SegmentInfo is one segment file's inspection result.
type SegmentInfo struct {
	Name     string
	FirstSeq uint64
	LastSeq  uint64
	Records  int
	Bytes    int64
	// Coalesced counts OpMerge records (the coalesced/delta kind), and
	// FoldedOps the mutations they stand for — plain records count one
	// each, so FoldedOps >= Records and the surplus is the disk work the
	// coalescing windows saved.
	Coalesced int
	FoldedOps uint64
	// Skipped counts unreadable spans (checksum or framing failures).
	Skipped int
	// SkippedBytes totals the unreadable span lengths.
	SkippedBytes int64
	// Torn reports the file ends in a partial record.
	Torn bool
}

// DirInfo is a WAL directory's inspection result (kvctl wal).
type DirInfo struct {
	Dir           string
	HasSnapshot   bool
	SnapshotName  string
	SnapshotSeq   uint64
	SnapshotBytes int64
	Segments      []SegmentInfo
}

// Corrupt reports whether any segment had unreadable spans (a torn
// final record does not count — that is expected crash damage).
func (d *DirInfo) Corrupt() bool {
	for i, s := range d.Segments {
		if s.Torn && i == len(d.Segments)-1 && s.Skipped == 1 {
			continue // only damage is the torn tail
		}
		if s.Skipped > 0 {
			return true
		}
	}
	return false
}

// Inspect scans a WAL directory offline, verifying every record's
// checksum, without opening it for writing. It backs `kvctl wal`.
func Inspect(dir string) (*DirInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	info := &DirInfo{Dir: dir}
	var segs []string
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, segSuffix):
			if _, perr := seqFromName(name, segSuffix); perr == nil {
				segs = append(segs, name)
			}
		case strings.HasSuffix(name, snapSuffix):
			seq, perr := seqFromName(name, snapSuffix)
			if perr != nil {
				continue
			}
			if !info.HasSnapshot || seq >= info.SnapshotSeq {
				st, serr := ent.Info()
				if serr != nil {
					return nil, serr
				}
				info.HasSnapshot = true
				info.SnapshotName = name
				info.SnapshotSeq = seq
				info.SnapshotBytes = st.Size()
			}
		}
	}
	sort.Strings(segs)
	for _, name := range segs {
		first, _ := seqFromName(name, segSuffix)
		coalesced, folded := 0, uint64(0)
		res, serr := scanSegmentFile(filepath.Join(dir, name), func(rec Record) error {
			if rec.Op == OpMerge {
				coalesced++
				folded += uint64(rec.Folded)
			} else {
				folded++
			}
			return nil
		})
		if serr != nil {
			return nil, serr
		}
		si := SegmentInfo{
			Name: name, FirstSeq: first, LastSeq: res.lastSeq,
			Records: res.records, Bytes: res.size,
			Coalesced: coalesced, FoldedOps: folded,
			Skipped: len(res.skips), Torn: res.torn,
		}
		for _, s := range res.skips {
			si.SkippedBytes += s.bytes
		}
		info.Segments = append(info.Segments, si)
	}
	return info, nil
}
