package wal

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/dist"
)

// BenchmarkWALAppend sweeps the sync policies with concurrent
// appenders, the shape the live server produces (many workers, one
// committer). It is the durability-cost companion to the in-memory
// store benchmarks in internal/kv: `always` pays a group-shared fsync
// per batch, `batch` pays an OS write, `none` is the write-path floor.
func BenchmarkWALAppend(b *testing.B) {
	value := make([]byte, 128)
	for _, policy := range []SyncPolicy{
		{Mode: SyncAlways},
		{Mode: SyncBatch, Window: 2 * time.Millisecond},
		{Mode: SyncNone},
	} {
		b.Run(policy.String(), func(b *testing.B) {
			w, err := Open(Options{Dir: b.TempDir(), Sync: policy})
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			defer func() { _ = w.Close() }()
			b.SetBytes(int64(frameHeaderLen + recordFixedLen + 8 + len(value)))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					ack, aerr := w.Append(OpPut, fmt.Sprintf("key-%04d", i%8192), value, uint64(i), 0)
					if aerr != nil {
						b.Fatalf("Append: %v", aerr)
					}
					if aerr := ack(); aerr != nil {
						b.Fatalf("ack: %v", aerr)
					}
				}
			})
		})
	}
}

// BenchmarkWALAppendZipf is the coalescing proof sweep: pipelined
// appenders (acks drained in the background, the shape a counter
// workload's concurrent clients produce) drive Zipf-skewed key streams
// through coalesce vs batch vs always at an equal window, and the
// bench reports the disk economics directly — disk-bytes/op and
// records/op. Under `coalesce` both must scale with the distinct keys
// per window rather than with operations once skew reaches ~0.9.
func BenchmarkWALAppendZipf(b *testing.B) {
	const keySpace = 8192
	for _, skew := range []float64{0, 0.9, 0.99, 1.1} {
		z, err := dist.NewZipf(keySpace, skew)
		if err != nil {
			b.Fatal(err)
		}
		for _, policy := range []SyncPolicy{
			{Mode: SyncAlways},
			{Mode: SyncBatch, Window: 2 * time.Millisecond},
			{Mode: SyncCoalesce, Window: 2 * time.Millisecond},
		} {
			b.Run(fmt.Sprintf("zipf=%.2f/%s", skew, policy), func(b *testing.B) {
				w, err := Open(Options{Dir: b.TempDir(), Sync: policy})
				if err != nil {
					b.Fatalf("Open: %v", err)
				}
				defer func() { _ = w.Close() }()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := dist.NewRand(uint64(time.Now().UnixNano()))
					var tail Ack
					i := 0
					for pb.Next() {
						i++
						k := z.Sample(rng)
						total := int64(i)
						ack, aerr := w.AppendRecord(Record{
							Op: OpMerge, Key: "ctr-" + strconv.Itoa(k),
							Value:   strconv.AppendInt(nil, total, 10),
							Version: uint64(i), Delta: 1,
						})
						if aerr != nil {
							b.Fatalf("AppendRecord: %v", aerr)
						}
						// Pipeline: await the previous window's ack, not this
						// op's, so the committer sees concurrent demand the way
						// a fleet of counter clients would produce it.
						if i%512 == 0 {
							if tail != nil {
								if aerr := tail(); aerr != nil {
									b.Fatalf("ack: %v", aerr)
								}
							}
							tail = ack
						}
					}
					if tail != nil {
						if aerr := tail(); aerr != nil {
							b.Fatalf("ack: %v", aerr)
						}
					}
				})
				if err := w.Sync(); err != nil {
					b.Fatalf("Sync: %v", err)
				}
				b.StopTimer()
				st := w.Stats()
				records := st.Appended
				if policy.Mode == SyncCoalesce {
					records = st.CoalescedRecords
				}
				b.ReportMetric(float64(st.Bytes)/float64(b.N), "disk-B/op")
				b.ReportMetric(float64(records)/float64(b.N), "records/op")
				b.ReportMetric(float64(st.Fsyncs)/float64(b.N), "fsyncs/op")
			})
		}
	}
}

// TestCoalesceBytesPerOpRatioGate is the CI regression gate behind the
// coalescing claim: on a deterministic Zipf-0.99 stream with fixed
// 2000-op commit windows, `coalesce` must write at most half the disk
// bytes `batch` writes for the same mutations. The run is fully
// deterministic (seeded stream, barrier-driven windows) and lands at
// 0.45x — the bound a 2000-op window over this keyspace implies — so
// the 0.5x bar is tight against the math but far from the 1.0x of a
// broken accumulator; live windows at real throughput fold harder
// (see EXPERIMENTS.md §E25).
func TestCoalesceBytesPerOpRatioGate(t *testing.T) {
	const (
		keySpace = 8192
		ops      = 20000
		window   = 2000
	)
	z, err := dist.NewZipf(keySpace, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	run := func(policy SyncPolicy) int64 {
		w, err := Open(Options{Dir: t.TempDir(), Sync: policy})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer func() { _ = w.Close() }()
		rng := dist.NewRand(42) // same stream for both policies
		for i := 1; i <= ops; i++ {
			k := z.Sample(rng)
			_, aerr := w.AppendRecord(Record{
				Op: OpMerge, Key: "ctr-" + strconv.Itoa(k),
				Value:   strconv.AppendInt(nil, int64(i), 10),
				Version: uint64(i), Delta: 1,
			})
			if aerr != nil {
				t.Fatalf("AppendRecord: %v", aerr)
			}
			if i%window == 0 {
				if serr := w.Sync(); serr != nil {
					t.Fatalf("Sync: %v", serr)
				}
			}
		}
		if serr := w.Sync(); serr != nil {
			t.Fatalf("Sync: %v", serr)
		}
		return w.Stats().Bytes
	}
	// The batch baseline frames every op; an hour-long window never
	// fires on its own, so the explicit Sync barriers are the window
	// boundaries and both runs commit in exactly ops/window windows.
	batchBytes := run(SyncPolicy{Mode: SyncBatch, Window: time.Hour})
	coalesceBytes := run(SyncPolicy{Mode: SyncCoalesce, Window: time.Hour})
	ratio := float64(coalesceBytes) / float64(batchBytes)
	t.Logf("zipf-0.99: coalesce %d B vs batch %d B over %d ops (ratio %.3f)",
		coalesceBytes, batchBytes, ops, ratio)
	if ratio > 0.5 {
		t.Fatalf("coalesce wrote %.3fx the bytes of batch, gate is 0.5x", ratio)
	}
}
