package wal

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkWALAppend sweeps the sync policies with concurrent
// appenders, the shape the live server produces (many workers, one
// committer). It is the durability-cost companion to the in-memory
// store benchmarks in internal/kv: `always` pays a group-shared fsync
// per batch, `batch` pays an OS write, `none` is the write-path floor.
func BenchmarkWALAppend(b *testing.B) {
	value := make([]byte, 128)
	for _, policy := range []SyncPolicy{
		{Mode: SyncAlways},
		{Mode: SyncBatch, Window: 2 * time.Millisecond},
		{Mode: SyncNone},
	} {
		b.Run(policy.String(), func(b *testing.B) {
			w, err := Open(Options{Dir: b.TempDir(), Sync: policy})
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			defer func() { _ = w.Close() }()
			b.SetBytes(int64(frameHeaderLen + recordFixedLen + 8 + len(value)))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					ack, aerr := w.Append(OpPut, fmt.Sprintf("key-%04d", i%8192), value, uint64(i), 0)
					if aerr != nil {
						b.Fatalf("Append: %v", aerr)
					}
					if aerr := ack(); aerr != nil {
						b.Fatalf("ack: %v", aerr)
					}
				}
			})
		})
	}
}
