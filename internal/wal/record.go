// Package wal is the store's durability subsystem: a segmented,
// CRC32C-framed append-only log with group commit, snapshot-plus-
// truncate compaction, and crash recovery.
//
// Writers enqueue records and a single committer goroutine batches them
// per write (and, under the "always" sync policy, per fsync), so the
// per-operation durability cost on the scheduler's hot path is one
// channel wait instead of one disk flush — the same keep-the-service-
// time-small-and-predictable concern that motivates the DAS scheduler
// itself. Segments are fixed-size files named by the sequence number of
// their first record; compaction writes an atomic snapshot of the store
// and drops every segment it fully covers; recovery loads the newest
// snapshot and replays the records past it, tolerating a torn final
// record (the expected artifact of crashing mid-append) and skipping-
// and-reporting corrupt records in sealed segments.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Op is a record's mutation kind.
type Op uint8

// Record operations. OpPut carries a value (and optional expiry);
// OpDelete is a tombstone; OpMerge is the coalesced/delta kind: it
// still carries the absolute resulting state (value, exact version) so
// replay never needs a baseline, plus the summed delta and the number
// of mutations folded into it for inspection tooling.
const (
	OpPut    Op = 1
	OpDelete Op = 2
	OpMerge  Op = 3
)

// String names the op for reports and tooling.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpMerge:
		return "merge"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Record is one logged mutation. Seq is assigned by the WAL at append
// time and is strictly monotonic across segments; Version is the
// store's last-writer-wins tag, preserved exactly so replay reproduces
// replication-visible state; ExpiresAtUnixNano is the absolute expiry
// instant (0 = never) so TTLs survive restarts without clock games.
type Record struct {
	Seq               uint64
	Op                Op
	Key               string
	Value             []byte
	Version           uint64
	ExpiresAtUnixNano int64

	// Merge-record fields, meaningful only when Op == OpMerge. The
	// record's Value/Version still hold the absolute resulting state —
	// these fields are the coalescing metadata: Delta is the sum of
	// merge deltas folded in since the last overwrite, Folded counts the
	// mutations this record stands for (>= 1), and Tombstone marks a
	// coalesced run whose final state is a delete.
	Delta     int64
	Folded    uint32
	Tombstone bool
}

// Frame layout:
//
//	length  uint32   payload byte count
//	crc     uint32   CRC32C (Castagnoli) over the payload
//	payload          op(1) seq(8) version(8) expiresAt(8)
//	                 keyLen(4) valueLen(4) key valueBytes
//	                 [delta(8) folded(4) flags(1)]   — OpMerge only
//
// All integers are big-endian, matching the wire codec's idiom. The
// length field is outside the checksum, so a corrupt length is caught
// by the frame failing to parse (or its CRC failing), not trusted
// blindly: scanners bound it by maxRecordLen and the bytes remaining.
// OpMerge records append a fixed trailer after the value: the summed
// delta, the folded-mutation count, and a flags byte (bit 0 =
// tombstone; all other bits must be zero so every accepted frame has
// exactly one encoding).
const (
	frameHeaderLen   = 8
	recordFixedLen   = 1 + 8 + 8 + 8 + 4 + 4
	mergeTrailerLen  = 8 + 4 + 1
	maxRecordLen     = 1 << 28 // 256 MiB sanity bound on one record
	maxKeyOrValueLen = maxRecordLen - recordFixedLen - mergeTrailerLen

	mergeFlagTombstone = 1 << 0
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors surfaced by frame decoding.
var (
	// ErrShortFrame reports a frame cut off before its declared length —
	// the signature of a torn final write.
	ErrShortFrame = errors.New("wal: short frame")
	// ErrBadCRC reports a frame whose payload fails its checksum.
	ErrBadCRC = errors.New("wal: checksum mismatch")
	// ErrBadRecord reports a payload that checksummed fine but does not
	// parse as a record.
	ErrBadRecord = errors.New("wal: malformed record")
	// ErrFrameTooLarge reports a declared frame length past the sanity
	// bound.
	ErrFrameTooLarge = errors.New("wal: frame length exceeds sanity bound")
)

// appendFrame encodes r as one checksummed frame onto dst.
func appendFrame(dst []byte, r *Record) []byte {
	payloadLen := recordFixedLen + len(r.Key) + len(r.Value)
	if r.Op == OpMerge {
		payloadLen += mergeTrailerLen
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(payloadLen))
	crcAt := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 0) // CRC placeholder
	payloadAt := len(dst)
	dst = append(dst, byte(r.Op))
	dst = binary.BigEndian.AppendUint64(dst, r.Seq)
	dst = binary.BigEndian.AppendUint64(dst, r.Version)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.ExpiresAtUnixNano))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Key)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Value)))
	dst = append(dst, r.Key...)
	dst = append(dst, r.Value...)
	if r.Op == OpMerge {
		dst = binary.BigEndian.AppendUint64(dst, uint64(r.Delta))
		dst = binary.BigEndian.AppendUint32(dst, r.Folded)
		var flags byte
		if r.Tombstone {
			flags |= mergeFlagTombstone
		}
		dst = append(dst, flags)
	}
	crc := crc32.Checksum(dst[payloadAt:], castagnoli)
	binary.BigEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

// decodeFrame parses one frame from the front of b, returning the
// record and the total bytes consumed. Errors classify what went wrong
// so scanners can tell a torn tail (ErrShortFrame) from corruption
// (ErrBadCRC, ErrBadRecord) — the consumed count on a CRC error is the
// full declared frame, letting a scanner skip it and resynchronize.
func decodeFrame(b []byte) (rec Record, n int, err error) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, ErrShortFrame
	}
	payloadLen := int(binary.BigEndian.Uint32(b))
	if payloadLen > maxRecordLen || payloadLen < recordFixedLen {
		return Record{}, 0, ErrFrameTooLarge
	}
	total := frameHeaderLen + payloadLen
	if len(b) < total {
		return Record{}, 0, ErrShortFrame
	}
	want := binary.BigEndian.Uint32(b[4:])
	payload := b[frameHeaderLen:total]
	if crc32.Checksum(payload, castagnoli) != want {
		return Record{}, total, ErrBadCRC
	}
	rec, err = decodePayload(payload)
	if err != nil {
		return Record{}, total, err
	}
	return rec, total, nil
}

// decodePayload parses a checksum-verified payload.
func decodePayload(p []byte) (Record, error) {
	if len(p) < recordFixedLen {
		return Record{}, ErrBadRecord
	}
	rec := Record{
		Op:                Op(p[0]),
		Seq:               binary.BigEndian.Uint64(p[1:]),
		Version:           binary.BigEndian.Uint64(p[9:]),
		ExpiresAtUnixNano: int64(binary.BigEndian.Uint64(p[17:])),
	}
	keyLen := int(binary.BigEndian.Uint32(p[25:]))
	valueLen := int(binary.BigEndian.Uint32(p[29:]))
	trailerLen := 0
	switch rec.Op {
	case OpPut, OpDelete:
	case OpMerge:
		trailerLen = mergeTrailerLen
	default:
		return Record{}, ErrBadRecord
	}
	if keyLen < 0 || valueLen < 0 || keyLen > maxKeyOrValueLen || valueLen > maxKeyOrValueLen ||
		recordFixedLen+keyLen+valueLen+trailerLen != len(p) {
		return Record{}, ErrBadRecord
	}
	rec.Key = string(p[recordFixedLen : recordFixedLen+keyLen])
	if valueLen > 0 {
		rec.Value = append([]byte(nil), p[recordFixedLen+keyLen:recordFixedLen+keyLen+valueLen]...)
	}
	if rec.Op == OpMerge {
		tr := p[len(p)-mergeTrailerLen:]
		rec.Delta = int64(binary.BigEndian.Uint64(tr))
		rec.Folded = binary.BigEndian.Uint32(tr[8:])
		flags := tr[12]
		if flags&^byte(mergeFlagTombstone) != 0 {
			return Record{}, ErrBadRecord // unknown flag bits: reject, keep encoding canonical
		}
		rec.Tombstone = flags&mergeFlagTombstone != 0
	}
	return rec, nil
}
