package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/fault"
)

// coalesceOpts is the fast-window coalesce configuration the tests use:
// short enough that window flushes happen promptly, long enough that a
// burst of appends lands in one window.
func coalesceOpts(dir string, window time.Duration) Options {
	return Options{Dir: dir, Sync: SyncPolicy{Mode: SyncCoalesce, Window: window}}
}

// appendMerge logs a merge mutation carrying its resulting state and
// returns the ack.
func appendMerge(t *testing.T, w *WAL, key string, total int64, version uint64, delta int64) Ack {
	t.Helper()
	ack, err := w.AppendRecord(Record{
		Op: OpMerge, Key: key, Value: []byte(strconv.FormatInt(total, 10)),
		Version: version, Delta: delta,
	})
	if err != nil {
		t.Fatalf("AppendRecord(merge %q): %v", key, err)
	}
	return ack
}

func TestMergeRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 9, Op: OpMerge, Key: "ctr", Value: []byte("42"), Version: 7, Delta: 17, Folded: 5},
		{Seq: 10, Op: OpMerge, Key: "gone", Version: 8, Delta: -3, Folded: 2, Tombstone: true},
		{Seq: 11, Op: OpMerge, Key: "neg", Value: []byte("-5"), Version: 1, Delta: -5, Folded: 1},
	}
	for _, want := range recs {
		frame := appendFrame(nil, &want)
		got, n, err := decodeFrame(frame)
		if err != nil || n != len(frame) {
			t.Fatalf("decodeFrame(%+v): n=%d err=%v", want, n, err)
		}
		if got.Seq != want.Seq || got.Op != want.Op || got.Key != want.Key ||
			string(got.Value) != string(want.Value) || got.Version != want.Version ||
			got.Delta != want.Delta || got.Folded != want.Folded || got.Tombstone != want.Tombstone {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
		// Canonical: re-encoding an accepted record is byte-identical.
		if string(appendFrame(nil, &got)) != string(frame) {
			t.Fatalf("re-encode of %+v is not canonical", want)
		}
	}
	// Unknown flag bits must be rejected, not silently dropped.
	bad := appendFrame(nil, &recs[0])
	bad[len(bad)-1] |= 0x80
	fixCRC(bad)
	if _, _, err := decodeFrame(bad); err == nil {
		t.Fatal("frame with unknown flag bits decoded")
	}
}

// fixCRC recomputes a frame's checksum after test doctoring.
func fixCRC(frame []byte) {
	crc := crc32.Checksum(frame[frameHeaderLen:], castagnoli)
	binary.BigEndian.PutUint32(frame[4:], crc)
}

func TestCoalesceFoldsWindowToDistinctKeys(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(coalesceOpts(dir, time.Hour)) // window never fires on its own
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// 100 ops over 3 keys in one window: 40 puts on "hot", 50 merges on
	// "ctr" summing 1..50, then a put+delete on "tmp".
	var acks []Ack
	for i := 0; i < 40; i++ {
		ack, aerr := w.Append(OpPut, "hot", []byte(fmt.Sprintf("v%02d", i)), uint64(i+1), 0)
		if aerr != nil {
			t.Fatalf("Append: %v", aerr)
		}
		acks = append(acks, ack)
	}
	total := int64(0)
	for i := 1; i <= 50; i++ {
		total += int64(i)
		acks = append(acks, appendMerge(t, w, "ctr", total, uint64(i), int64(i)))
	}
	ack, aerr := w.Append(OpPut, "tmp", []byte("x"), 1, 0)
	if aerr != nil {
		t.Fatalf("Append: %v", aerr)
	}
	acks = append(acks, ack)
	ack, aerr = w.Append(OpDelete, "tmp", nil, 0, 0)
	if aerr != nil {
		t.Fatalf("Append: %v", aerr)
	}
	acks = append(acks, ack)

	// Nothing acked yet: the window is open. Sync forces the flush.
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	for i, a := range acks {
		if err := a(); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	st := w.Stats()
	if st.CoalescedOps != 92 || st.CoalescedRecords != 3 || st.CoalesceWindows != 1 {
		t.Fatalf("stats = ops:%d recs:%d windows:%d, want 92/3/1",
			st.CoalescedOps, st.CoalescedRecords, st.CoalesceWindows)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	state, recs, _ := collect(t, dir, Options{})
	if len(recs) != 3 {
		t.Fatalf("flushed %d records, want 3 (distinct keys)", len(recs))
	}
	hot := state["hot"]
	if hot.Op != OpMerge || string(hot.Value) != "v39" || hot.Version != 40 ||
		hot.Folded != 40 || hot.Delta != 0 {
		t.Fatalf("hot = %+v", hot)
	}
	ctr := state["ctr"]
	if ctr.Op != OpMerge || string(ctr.Value) != "1275" || ctr.Version != 50 ||
		ctr.Folded != 50 || ctr.Delta != 1275 {
		t.Fatalf("ctr = %+v", ctr)
	}
	if _, ok := state["tmp"]; ok {
		t.Fatal("tmp survived its coalesced delete")
	}
	// Sequence order on disk stays monotonic.
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("records out of order: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestCoalesceWindowTimerFlushes(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(coalesceOpts(dir, 2*time.Millisecond))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = w.Close() }()
	ack, err := w.Append(OpPut, "k", []byte("v"), 1, 0)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- ack() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ack: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("window timer never flushed")
	}
	if st := w.Stats(); st.CoalesceWindows == 0 || st.Fsyncs == 0 {
		t.Fatalf("stats after timer flush = %+v", st)
	}
}

func TestCoalesceSingleMutationStaysPlain(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(coalesceOpts(dir, time.Hour))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ack, err := w.Append(OpPut, "solo", []byte("v"), 3, 0)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil { // Close flushes the open window
		t.Fatalf("Close: %v", err)
	}
	if err := ack(); err != nil {
		t.Fatalf("ack after close flush: %v", err)
	}
	_, recs, _ := collect(t, dir, Options{})
	if len(recs) != 1 || recs[0].Op != OpPut || recs[0].Version != 3 {
		t.Fatalf("recs = %+v, want one plain put", recs)
	}
}

// TestCoalesceAbandonLosesOnlyUnackedWindow is the SIGKILL-mid-window
// edge: appends whose window never flushed fail with ErrAbandoned and
// are absent after recovery, while every acked window survives exactly.
func TestCoalesceAbandonLosesOnlyUnackedWindow(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(coalesceOpts(dir, time.Hour))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Window 1: 10 merges on ctr, flushed by a barrier and acked.
	total := int64(0)
	var acks []Ack
	for i := 1; i <= 10; i++ {
		total += 2
		acks = append(acks, appendMerge(t, w, "ctr", total, uint64(i), 2))
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	for _, a := range acks {
		if err := a(); err != nil {
			t.Fatalf("acked window failed: %v", err)
		}
	}
	// Window 2: 5 more merges, never flushed — the crash window.
	var lost []Ack
	for i := 11; i <= 15; i++ {
		total += 2
		lost = append(lost, appendMerge(t, w, "ctr", total, uint64(i), 2))
	}
	w.Abandon() // simulated kill -9
	for _, a := range lost {
		if err := a(); err != ErrAbandoned {
			t.Fatalf("unflushed append err = %v, want ErrAbandoned", err)
		}
	}

	state, recs, rep := collect(t, dir, Options{})
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1 coalesced record", len(recs))
	}
	ctr := state["ctr"]
	if string(ctr.Value) != "20" || ctr.Version != 10 || ctr.Folded != 10 || ctr.Delta != 20 {
		t.Fatalf("recovered ctr = %+v, want the acked window's exact state", ctr)
	}
	if rep.TornTail {
		t.Fatalf("clean abandon reported torn: %+v", rep)
	}
}

// TestCoalesceTornTailTruncatesLastWindow tears the last bytes off a
// flushed coalesced record: recovery must truncate it away and keep the
// prefix, exactly as for plain records.
func TestCoalesceTornTailTruncatesLastWindow(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(coalesceOpts(dir, time.Hour))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Two windows, each closed by a Sync barrier: first folds key "a",
	// second folds key "b".
	acka := appendMerge(t, w, "a", 5, 1, 5)
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := acka(); err != nil {
		t.Fatalf("ack a: %v", err)
	}
	ackb1 := appendMerge(t, w, "b", 3, 1, 3)
	ackb2 := appendMerge(t, w, "b", 7, 2, 4)
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := ackb1(); err != nil {
		t.Fatalf("ack b1: %v", err)
	}
	if err := ackb2(); err != nil {
		t.Fatalf("ack b2: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := segmentPaths(t, dir)
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	// Tear the final (coalesced) record: drop its last 5 bytes, which
	// land inside the merge trailer.
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	state, recs, rep := collect(t, dir, Options{})
	if !rep.TornTail {
		t.Fatalf("torn coalesced record not reported: %+v", rep)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1", len(recs))
	}
	a := state["a"]
	if string(a.Value) != "5" || a.Version != 1 {
		t.Fatalf("a = %+v", a)
	}
	if _, ok := state["b"]; ok {
		t.Fatal("torn record for b must not replay")
	}
}

// TestCoalesceReplaySkipsSnapshotOlderWindows proves replay idempotence
// when a snapshot is newer than the last flushed window: the covered
// coalesced records are skipped entirely.
func TestCoalesceReplaySkipsSnapshotCoveredWindows(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(coalesceOpts(dir, time.Hour))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ack := appendMerge(t, w, "ctr", 10, 1, 10)
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := ack(); err != nil {
		t.Fatalf("ack: %v", err)
	}
	// Compact: the snapshot now covers the flushed window; its segment
	// is removed, and replay applies nothing.
	if _, err := w.Compact(func(f io.Writer) error {
		_, werr := f.Write([]byte("snapshot-state"))
		return werr
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2, err := Open(coalesceOpts(dir, time.Hour))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	applied := 0
	var snap []byte
	rep, err := w2.Recover(
		func(r io.Reader) error { var e error; snap, e = io.ReadAll(r); return e },
		func(Record) error { applied++; return nil },
	)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if applied != 0 || rep.RecordsApplied != 0 || !rep.SnapshotLoaded || string(snap) != "snapshot-state" {
		t.Fatalf("replay after compact: applied=%d snap=%q report=%+v", applied, snap, rep)
	}
	// New appends continue past the snapshot sequence.
	ack2 := appendMerge(t, w2, "ctr", 15, 2, 5)
	if err := w2.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := ack2(); err != nil {
		t.Fatalf("ack2: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.SnapshotSeq == 0 || len(info.Segments) == 0 {
		t.Fatalf("Inspect = %+v", info)
	}
}

// TestCoalesceFailStop: a torn write during a window flush latches the
// sticky error; the window's writers and all later appends see it.
func TestCoalesceFailStop(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewFileInjector()
	w, err := Open(Options{
		Dir:      dir,
		Sync:     SyncPolicy{Mode: SyncCoalesce, Window: time.Millisecond},
		WrapFile: func(f File) File { return inj.Wrap(f) },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = w.Close() }()
	inj.TearNextWrite(5)
	ack, err := w.Append(OpPut, "k", []byte("0123456789"), 1, 0)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := ack(); err == nil {
		t.Fatal("torn flush acked cleanly")
	}
	if w.Err() == nil {
		t.Fatal("sticky error not latched")
	}
	if _, err := w.Append(OpPut, "k2", []byte("v"), 2, 0); err == nil {
		t.Fatal("append after failure accepted")
	}
}

// TestCoalesceConcurrentAppenders hammers the coalescer from many
// goroutines (run with -race): every ack must resolve, and the replayed
// final state must match the last version each key saw.
func TestCoalesceConcurrentAppenders(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(coalesceOpts(dir, 500*time.Microsecond))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const (
		goroutines = 8
		perG       = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", g%4) // contended: 2 goroutines per key
			for i := 1; i <= perG; i++ {
				ack, aerr := w.Append(OpPut, key, []byte(fmt.Sprintf("g%d-i%d", g, i)), uint64(g*perG+i), 0)
				if aerr != nil {
					errs <- aerr
					return
				}
				if i%50 == 0 { // occasionally wait out a window
					if aerr := ack(); aerr != nil {
						errs <- aerr
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatalf("appender: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	state, recs, _ := collect(t, dir, Options{})
	if len(state) != 4 {
		t.Fatalf("replayed %d keys, want 4", len(state))
	}
	total := uint64(0)
	for _, r := range recs {
		if r.Op == OpMerge {
			total += uint64(r.Folded)
		} else {
			total++
		}
	}
	if total != goroutines*perG {
		t.Fatalf("folded totals account for %d ops, want %d", total, goroutines*perG)
	}
	if len(recs) >= goroutines*perG/2 {
		t.Fatalf("%d records for %d ops: coalescing is not folding", len(recs), goroutines*perG)
	}
}

// TestInspectReportsCoalescedRecords: satellite round-trip — Inspect
// must classify the coalesced kind and total its folded ops.
func TestInspectReportsCoalescedRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(coalesceOpts(dir, time.Hour))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// One window holding a plain put plus 6 merges over 2 keys: three
	// records flush, two of them coalesced.
	var acks []Ack
	ackPlain, err := w.Append(OpPut, "plain", []byte("v"), 1, 0)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	acks = append(acks, ackPlain)
	for i := 1; i <= 3; i++ {
		acks = append(acks, appendMerge(t, w, "c1", int64(i), uint64(i), 1))
		acks = append(acks, appendMerge(t, w, "c2", int64(2*i), uint64(i), 2))
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	for _, a := range acks {
		if err := a(); err != nil {
			t.Fatalf("ack: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(info.Segments) != 1 {
		t.Fatalf("%d segments, want 1", len(info.Segments))
	}
	seg := info.Segments[0]
	if seg.Records != 3 || seg.Coalesced != 2 || seg.FoldedOps != 7 {
		t.Fatalf("segment = %+v, want records=3 coalesced=2 foldedOps=7", seg)
	}
	if info.Corrupt() {
		t.Fatal("clean log reported corrupt")
	}
}
