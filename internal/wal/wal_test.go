package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/fault"
)

// collect replays a directory's log into a map and a record list.
func collect(t *testing.T, dir string, opts Options) (map[string]Record, []Record, *RecoveryReport) {
	t.Helper()
	opts.Dir = dir
	w, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = w.Close() }()
	state := make(map[string]Record)
	var recs []Record
	rep, err := w.Recover(nil, func(r Record) error {
		recs = append(recs, r)
		if r.Op == OpDelete || (r.Op == OpMerge && r.Tombstone) {
			delete(state, r.Key)
		} else {
			state[r.Key] = r
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return state, recs, rep
}

func mustAppend(t *testing.T, w *WAL, op Op, key, value string, version uint64) {
	t.Helper()
	ack, err := w.Append(op, key, []byte(value), version, 0)
	if err != nil {
		t.Fatalf("Append(%s %q): %v", op, key, err)
	}
	if err := ack(); err != nil {
		t.Fatalf("ack(%s %q): %v", op, key, err)
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rep, err := w.Recover(nil, func(Record) error { t.Fatal("empty log should apply nothing"); return nil })
	if err != nil {
		t.Fatalf("Recover empty: %v", err)
	}
	if rep.RecordsApplied != 0 || rep.SnapshotLoaded || rep.TornTail {
		t.Fatalf("empty-log report = %+v", rep)
	}
	mustAppend(t, w, OpPut, "a", "1", 7)
	mustAppend(t, w, OpPut, "b", "2", 8)
	mustAppend(t, w, OpDelete, "a", "", 0)
	mustAppend(t, w, OpPut, "b", "3", 9)
	if got := w.LastSeq(); got != 4 {
		t.Fatalf("LastSeq = %d, want 4", got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	state, recs, rep := collect(t, dir, Options{})
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if rep.TornTail || len(rep.Skipped) != 0 {
		t.Fatalf("clean log report = %+v", rep)
	}
	if _, ok := state["a"]; ok {
		t.Fatal("deleted key resurrected")
	}
	if b := state["b"]; string(b.Value) != "3" || b.Version != 9 {
		t.Fatalf("b = %+v, want value 3 version 9", b)
	}
}

func TestSegmentRotationAndStats(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentSize: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 40; i++ {
		mustAppend(t, w, OpPut, fmt.Sprintf("key-%02d", i), "0123456789abcdef", uint64(i+1))
	}
	st := w.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", st.Segments)
	}
	if st.Appended != 40 || st.LastSeq != 40 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Fsyncs == 0 || st.FsyncLatency.Count == 0 {
		t.Fatal("always-sync WAL recorded no fsyncs")
	}
	if st.BatchRecords.Count == 0 {
		t.Fatal("no group-commit batches observed")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	state, recs, _ := collect(t, dir, Options{SegmentSize: 256})
	if len(recs) != 40 || len(state) != 40 {
		t.Fatalf("replayed %d records, %d keys; want 40, 40", len(recs), len(state))
	}
}

func TestConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ack, aerr := w.Append(OpPut, fmt.Sprintf("w%d-%03d", g, i), []byte("v"), 1, 0)
				if aerr != nil {
					errCh <- aerr
					return
				}
				if aerr := ack(); aerr != nil {
					errCh <- aerr
					return
				}
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	for g := 0; g < writers; g++ {
		if err := <-errCh; err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	state, recs, _ := collect(t, dir, Options{})
	if len(recs) != writers*perWriter || len(state) != writers*perWriter {
		t.Fatalf("replayed %d records, %d keys; want %d", len(recs), len(state), writers*perWriter)
	}
	// Sequence numbers must be dense and strictly increasing.
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if r.Seq == 0 || r.Seq > uint64(writers*perWriter) || seen[r.Seq] {
			t.Fatalf("bad seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestBatchAndNonePoliciesRecover(t *testing.T) {
	for _, policy := range []SyncPolicy{
		{Mode: SyncBatch, Window: time.Millisecond},
		{Mode: SyncNone},
	} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(Options{Dir: dir, Sync: policy})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			for i := 0; i < 25; i++ {
				mustAppend(t, w, OpPut, fmt.Sprintf("k%02d", i), "v", uint64(i+1))
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			_, recs, _ := collect(t, dir, Options{})
			if len(recs) != 25 {
				t.Fatalf("replayed %d records, want 25", len(recs))
			}
		})
	}
}

func TestCompactDropsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentSize: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 30; i++ {
		mustAppend(t, w, OpPut, fmt.Sprintf("key-%02d", i), "0123456789abcdef", uint64(i+1))
	}
	snapshotBody := []byte("snapshot-state-stand-in")
	removed, err := w.Compact(func(out io.Writer) error {
		_, werr := out.Write(snapshotBody)
		return werr
	})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if removed == 0 {
		t.Fatal("compaction removed no segments")
	}
	st := w.Stats()
	if st.SnapshotSeq != 30 {
		t.Fatalf("snapshot covers seq %d, want 30", st.SnapshotSeq)
	}
	// Appends continue after compaction with continuous seqs.
	mustAppend(t, w, OpPut, "post", "compact", 31)
	if got := w.LastSeq(); got != 31 {
		t.Fatalf("LastSeq after compact = %d, want 31", got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: snapshot loads, only the post-compaction record replays.
	w2, err := Open(Options{Dir: dir, SegmentSize: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = w2.Close() }()
	var snapGot []byte
	var replayed []Record
	rep, err := w2.Recover(
		func(r io.Reader) error {
			var rerr error
			snapGot, rerr = io.ReadAll(r)
			return rerr
		},
		func(r Record) error {
			replayed = append(replayed, r)
			return nil
		},
	)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rep.SnapshotLoaded || rep.SnapshotSeq != 30 {
		t.Fatalf("report = %+v, want snapshot @30", rep)
	}
	if !bytes.Equal(snapGot, snapshotBody) {
		t.Fatalf("snapshot body = %q", snapGot)
	}
	if len(replayed) != 1 || replayed[0].Key != "post" || replayed[0].Seq != 31 {
		t.Fatalf("replayed = %+v, want only seq-31 post record", replayed)
	}
	if got := w2.LastSeq(); got != 31 {
		t.Fatalf("reopened LastSeq = %d, want 31", got)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncPolicy{Mode: SyncAlways}, true},
		{"", SyncPolicy{Mode: SyncAlways}, true},
		{"none", SyncPolicy{Mode: SyncNone}, true},
		{"batch", SyncPolicy{Mode: SyncBatch, Window: defaultBatchWindow}, true},
		{"batch:5ms", SyncPolicy{Mode: SyncBatch, Window: 5 * time.Millisecond}, true},
		{"batch:-1ms", SyncPolicy{}, false},
		{"batch:", SyncPolicy{}, false},
		{"coalesce", SyncPolicy{Mode: SyncCoalesce, Window: defaultBatchWindow}, true},
		{"coalesce:5ms", SyncPolicy{Mode: SyncCoalesce, Window: 5 * time.Millisecond}, true},
		{"coalesce:-1ms", SyncPolicy{}, false},
		{"coalesce:", SyncPolicy{}, false},
		{"fsync", SyncPolicy{}, false},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseSyncPolicy(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("ParseSyncPolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, s := range []string{"always", "none", "batch:5ms", "coalesce:5ms"} {
		p, _ := ParseSyncPolicy(s)
		if p.String() != s {
			t.Fatalf("String round trip %q -> %q", s, p.String())
		}
	}
}

func TestAbandonSimulatesCrash(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, w, OpPut, fmt.Sprintf("k%d", i), "v", uint64(i+1))
	}
	w.Abandon()
	if _, err := w.Append(OpPut, "late", nil, 1, 0); err == nil {
		t.Fatal("append after Abandon should fail")
	}
	// Acknowledged (fsynced) records survive the crash.
	_, recs, _ := collect(t, dir, Options{})
	if len(recs) != 10 {
		t.Fatalf("recovered %d records after crash, want 10", len(recs))
	}
}

func TestTornWriteInjectionFailsStop(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewFileInjector()
	w, err := Open(Options{
		Dir:      dir,
		WrapFile: func(f File) File { return inj.Wrap(f) },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		mustAppend(t, w, OpPut, fmt.Sprintf("good-%d", i), "value", uint64(i+1))
	}
	inj.TearNextWrite(5) // the next record loses all but 5 bytes mid-write
	ack, err := w.Append(OpPut, "doomed", []byte("never-lands"), 4, 0)
	if err != nil {
		t.Fatalf("Append enqueue: %v", err)
	}
	if err := ack(); err == nil {
		t.Fatal("torn write must fail the append's ack")
	}
	// The WAL is fail-stop: later appends report the sticky error.
	if _, err := w.Append(OpPut, "after", nil, 5, 0); err == nil {
		t.Fatal("append after torn write should fail fast")
	}
	w.Abandon()

	// Recovery: the torn record is truncated away, the rest survives.
	state, recs, rep := collect(t, dir, Options{})
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3 (got %+v)", len(recs), recs)
	}
	if !rep.TornTail {
		t.Fatalf("report did not flag the torn tail: %+v", rep)
	}
	if _, ok := state["doomed"]; ok {
		t.Fatal("torn record must not replay")
	}
}

func TestFailedFsyncFailsAlwaysModeAcks(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewFileInjector()
	w, err := Open(Options{
		Dir:      dir,
		WrapFile: func(f File) File { return inj.Wrap(f) },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Abandon()
	mustAppend(t, w, OpPut, "pre", "v", 1)
	inj.FailSync()
	ack, err := w.Append(OpPut, "unsynced", []byte("v"), 2, 0)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := ack(); err == nil {
		t.Fatal("always-mode ack must surface the fsync failure")
	}
}

func TestInspectReportsSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentSize: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, w, OpPut, fmt.Sprintf("key-%02d", i), "0123456789abcdef", uint64(i+1))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(info.Segments) < 2 {
		t.Fatalf("Inspect found %d segments, want >= 2", len(info.Segments))
	}
	records, last := 0, uint64(0)
	for _, s := range info.Segments {
		records += s.Records
		if s.Skipped != 0 || s.Torn {
			t.Fatalf("clean segment reported damage: %+v", s)
		}
		if s.FirstSeq <= last {
			t.Fatalf("segments out of order: %+v", info.Segments)
		}
		last = s.LastSeq
	}
	if records != 20 || last != 20 {
		t.Fatalf("Inspect totals: records=%d last=%d, want 20, 20", records, last)
	}
	if info.Corrupt() {
		t.Fatal("clean dir flagged corrupt")
	}
}

func TestRecoverRefusedAfterAppend(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = w.Close() }()
	mustAppend(t, w, OpPut, "k", "v", 1)
	if _, err := w.Recover(nil, nil); err == nil {
		t.Fatal("Recover after Append must refuse")
	}
}

// segmentPaths lists the dir's segment files in order.
func segmentPaths(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	return names
}

func TestCloseFlushesQueuedAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncPolicy{Mode: SyncBatch, Window: time.Hour}})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// A huge batch window means nothing fsyncs until Close's final flush.
	for i := 0; i < 5; i++ {
		mustAppend(t, w, OpPut, fmt.Sprintf("k%d", i), "v", uint64(i+1))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := len(segmentPaths(t, dir)); got != 1 {
		t.Fatalf("%d segment files, want 1", got)
	}
	_, recs, _ := collect(t, dir, Options{})
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
}

func TestOpenIgnoresForeignAndTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(9)+".tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = w.Close() }()
	if _, err := os.Stat(filepath.Join(dir, snapName(9)+".tmp")); !os.IsNotExist(err) {
		t.Fatal("leftover snapshot temp file not removed")
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatal("foreign file must be left alone")
	}
	if got := w.LastSeq(); got != 0 {
		t.Fatalf("LastSeq = %d, want 0", got)
	}
}
