package wal

import (
	"bytes"
	"testing"
)

// FuzzRecordDecode hammers the frame decoder with arbitrary bytes: it
// must never panic, and any frame it accepts must re-encode to exactly
// the bytes it consumed (the encoding is canonical, so decode∘encode is
// the identity on valid frames). CI runs this alongside the wire-codec
// fuzz targets.
func FuzzRecordDecode(f *testing.F) {
	f.Add(appendFrame(nil, &Record{Seq: 1, Op: OpPut, Key: "k", Value: []byte("v"), Version: 7}))
	f.Add(appendFrame(nil, &Record{Seq: 42, Op: OpDelete, Key: "gone", ExpiresAtUnixNano: 123456789}))
	f.Add(appendFrame(nil, &Record{Seq: 3, Op: OpPut, Key: "", Value: nil}))
	f.Add(appendFrame(nil, &Record{Seq: 8, Op: OpMerge, Key: "ctr", Value: []byte("1275"), Version: 50, Delta: 1275, Folded: 50}))
	f.Add(appendFrame(nil, &Record{Seq: 12, Op: OpMerge, Key: "dead", Version: 3, Delta: -9, Folded: 4, Tombstone: true}))
	long := appendFrame(nil, &Record{Seq: 9, Op: OpPut, Key: "kk", Value: bytes.Repeat([]byte("x"), 300)})
	f.Add(long)
	f.Add(long[:len(long)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeFrame(data)
		if err != nil {
			if n < 0 || n > len(data) {
				t.Fatalf("error path consumed %d of %d bytes", n, len(data))
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted frame consumed %d of %d bytes", n, len(data))
		}
		re := appendFrame(nil, &rec)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data[:n], re)
		}
	})
}
