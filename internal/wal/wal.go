package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/daskv/daskv/internal/metrics"
)

// SyncMode selects when the committer calls fsync.
type SyncMode int

// Sync modes. See SyncPolicy.
const (
	// SyncAlways fsyncs every group-committed batch before acknowledging
	// its writers: an acknowledged write survives kill -9 and power loss.
	SyncAlways SyncMode = iota
	// SyncBatch acknowledges after the OS write and fsyncs at most once
	// per window: a crash loses at most the last window of acknowledged
	// writes (kill -9 alone loses nothing — the bytes are in page cache).
	SyncBatch
	// SyncNone never fsyncs on the append path (segment seals and Close
	// still sync); durability rides entirely on the OS writeback.
	SyncNone
	// SyncCoalesce folds the mutations of each commit window into a
	// per-key accumulator and flushes one record per distinct key —
	// last-write-wins for puts/deletes, summed deltas for merges — so
	// disk bytes scale with distinct keys touched, not operations.
	// Writes acknowledge only after their window's flush is fsynced
	// (SyncAlways-grade durability at window granularity): an
	// acknowledged write survives kill -9 and power loss, an
	// unacknowledged one may be lost with its window.
	SyncCoalesce
)

// SyncPolicy is a parsed -wal-sync setting.
type SyncPolicy struct {
	Mode SyncMode
	// Window is the maximum time acknowledged-but-unsynced records wait
	// for their fsync under SyncBatch, and the commit-window length
	// mutations accumulate for under SyncCoalesce.
	Window time.Duration
}

// defaultBatchWindow is the SyncBatch window when none is given.
const defaultBatchWindow = 2 * time.Millisecond

// String renders the policy in ParseSyncPolicy's grammar.
func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch:" + p.Window.String()
	case SyncNone:
		return "none"
	case SyncCoalesce:
		return "coalesce:" + p.Window.String()
	default:
		return fmt.Sprintf("sync(%d)", int(p.Mode))
	}
}

// ParseSyncPolicy parses "always", "none", "batch", "batch:<window>",
// "coalesce", or "coalesce:<window>" (e.g. batch:5ms, coalesce:2ms).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch {
	case s == "" || s == "always":
		return SyncPolicy{Mode: SyncAlways}, nil
	case s == "none":
		return SyncPolicy{Mode: SyncNone}, nil
	case s == "batch":
		return SyncPolicy{Mode: SyncBatch, Window: defaultBatchWindow}, nil
	case strings.HasPrefix(s, "batch:"):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "batch:"))
		if err != nil || d <= 0 {
			return SyncPolicy{}, fmt.Errorf("wal: bad batch window %q", strings.TrimPrefix(s, "batch:"))
		}
		return SyncPolicy{Mode: SyncBatch, Window: d}, nil
	case s == "coalesce":
		return SyncPolicy{Mode: SyncCoalesce, Window: defaultBatchWindow}, nil
	case strings.HasPrefix(s, "coalesce:"):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "coalesce:"))
		if err != nil || d <= 0 {
			return SyncPolicy{}, fmt.Errorf("wal: bad coalesce window %q", strings.TrimPrefix(s, "coalesce:"))
		}
		return SyncPolicy{Mode: SyncCoalesce, Window: d}, nil
	default:
		return SyncPolicy{}, fmt.Errorf("wal: unknown sync policy %q (want always|batch:<window>|coalesce:<window>|none)", s)
	}
}

// File is the write surface the WAL needs from a segment file. It is an
// interface so fault injection (internal/fault's FileInjector) can tear
// writes or lie about fsyncs in chaos tests.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// Options configures Open.
type Options struct {
	// Dir is the log directory, created if absent. One WAL owns one
	// directory.
	Dir string
	// SegmentSize is the rotation threshold in bytes (default 16 MiB).
	SegmentSize int64
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// WrapFile, when set, wraps every newly created segment file on the
	// append path — the fault-injection hook.
	WrapFile func(File) File
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 16 << 20
	}
	if (o.Sync.Mode == SyncBatch || o.Sync.Mode == SyncCoalesce) && o.Sync.Window <= 0 {
		o.Sync.Window = defaultBatchWindow
	}
	return o
}

// Ack awaits one append's durability point: under SyncAlways the batch
// fsync, under SyncCoalesce the commit window's flush fsync, under
// SyncBatch/SyncNone the OS write. It returns the sticky WAL error if
// the log has failed.
type Ack func() error

// segmentMeta describes one sealed (no longer written) segment.
type segmentMeta struct {
	path     string
	firstSeq uint64
	lastSeq  uint64
	bytes    int64
}

// pending is one queued append (or a sync barrier when sync is set).
// Under framing policies the record is encoded at Append time; under
// SyncCoalesce the record itself rides along instead and is framed by
// the committer when its commit window flushes.
type pending struct {
	frame []byte
	rec   Record
	seq   uint64
	sync  bool
	done  chan error
}

// WAL is a segmented write-ahead log. All methods are safe for
// concurrent use. Appends enqueue to a single committer goroutine that
// batches writes (group commit); see SyncMode for the acknowledgement
// contract.
type WAL struct {
	opts Options

	mu         sync.Mutex
	nextSeq    uint64
	queue      []*pending
	failed     error
	closed     bool
	recovered  bool
	tornAtOpen bool

	// File-side state, owned by the committer; fmu guards it only for
	// Stats/Compact readers so appenders never wait on disk I/O.
	fmu      sync.Mutex
	seg      File
	segPath  string
	segStart uint64
	segLast  uint64
	segBytes int64
	sealed   []segmentMeta
	snapSeq  uint64 // seq covered by the newest snapshot on disk
	hasSnap  bool

	appended         atomic.Uint64
	fsyncs           atomic.Uint64
	coalescedOps     atomic.Uint64
	coalescedRecords atomic.Uint64
	coalesceWindows  atomic.Uint64
	hmu              sync.Mutex
	fsyncHist        *metrics.Histogram
	batchHist        *metrics.Histogram
	windowKeysHist   *metrics.Histogram

	wake    chan struct{}
	quit    chan struct{}
	abandon chan struct{}
	wg      sync.WaitGroup
}

// Histogram bounds: fsync latencies from 1µs to 10s (4 sub-buckets per
// octave, matching the server's op histograms); batch sizes from 1 to
// 4096 records.
const (
	fsyncHistSmallest = time.Microsecond
	fsyncHistLargest  = 10 * time.Second
	batchHistLargest  = 4096
	histPerOctave     = 4
)

// Open scans dir (creating it if needed), truncates a torn tail off the
// final segment, and starts the committer. Call Recover before the
// first Append to replay existing state; appending without recovering
// is allowed only when the caller does not care about prior contents.
func Open(opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	w := &WAL{
		opts:           opts,
		nextSeq:        1,
		fsyncHist:      metrics.NewHistogram(fsyncHistSmallest, fsyncHistLargest, histPerOctave),
		batchHist:      metrics.NewHistogram(1, batchHistLargest, histPerOctave),
		windowKeysHist: metrics.NewHistogram(1, batchHistLargest, histPerOctave),
		wake:           make(chan struct{}, 1),
		quit:           make(chan struct{}),
		abandon:        make(chan struct{}),
	}
	if err := w.scanDir(); err != nil {
		return nil, err
	}
	w.wg.Add(1)
	go w.committer()
	return w, nil
}

// scanDir inventories segments and snapshots, removes leftover temp
// files, and fixes nextSeq. The final segment's tail is scanned and a
// torn last record truncated away so appends resume on a clean
// boundary.
func (w *WAL) scanDir() error {
	entries, err := os.ReadDir(w.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: read dir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		path := filepath.Join(w.opts.Dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = os.Remove(path) // crashed mid-snapshot; the rename never happened
		case strings.HasSuffix(name, segSuffix):
			first, perr := seqFromName(name, segSuffix)
			if perr != nil {
				continue // foreign file; leave it alone
			}
			info, ierr := ent.Info()
			if ierr != nil {
				return fmt.Errorf("wal: stat %s: %w", name, ierr)
			}
			w.sealed = append(w.sealed, segmentMeta{path: path, firstSeq: first, bytes: info.Size()})
		case strings.HasSuffix(name, snapSuffix):
			seq, perr := seqFromName(name, snapSuffix)
			if perr != nil {
				continue
			}
			if !w.hasSnap || seq >= w.snapSeq {
				w.snapSeq = seq
				w.hasSnap = true
			}
		}
	}
	sort.Slice(w.sealed, func(i, j int) bool { return w.sealed[i].firstSeq < w.sealed[j].firstSeq })
	// Fill lastSeq: for every segment but the final one it is the next
	// segment's firstSeq - 1; the final one is scanned (and its torn
	// tail, if any, truncated).
	for i := range w.sealed {
		if i+1 < len(w.sealed) {
			w.sealed[i].lastSeq = w.sealed[i+1].firstSeq - 1
		}
	}
	if n := len(w.sealed); n > 0 {
		last := &w.sealed[n-1]
		res, serr := scanSegmentFile(last.path, nil)
		if serr != nil {
			return serr
		}
		if res.torn {
			if terr := os.Truncate(last.path, res.goodBytes); terr != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", last.path, terr)
			}
			last.bytes = res.goodBytes
			w.tornAtOpen = true
		}
		last.lastSeq = res.lastSeq
		if last.lastSeq < last.firstSeq { // nothing valid survived
			last.lastSeq = last.firstSeq - 1
		}
		w.nextSeq = last.lastSeq + 1
	}
	if w.hasSnap && w.snapSeq >= w.nextSeq {
		w.nextSeq = w.snapSeq + 1
	}
	return nil
}

const (
	segSuffix  = ".wal"
	snapSuffix = ".snap"
)

func segName(firstSeq uint64) string { return fmt.Sprintf("%020d%s", firstSeq, segSuffix) }
func snapName(seq uint64) string     { return fmt.Sprintf("%020d%s", seq, snapSuffix) }

// seqFromName parses the 20-digit sequence prefix of a segment or
// snapshot file name.
func seqFromName(name, suffix string) (uint64, error) {
	base := strings.TrimSuffix(name, suffix)
	if len(base) != 20 {
		return 0, fmt.Errorf("wal: foreign file name %q", name)
	}
	return strconv.ParseUint(base, 10, 64)
}

// Append logs one mutation, assigning its sequence number, and returns
// an Ack for its durability point. The error return is non-nil only
// when the WAL is closed or has failed (the Ack carries batch errors).
func (w *WAL) Append(op Op, key string, value []byte, version uint64, expiresAtUnixNano int64) (Ack, error) {
	return w.AppendRecord(Record{
		Op: op, Key: key, Value: value,
		Version: version, ExpiresAtUnixNano: expiresAtUnixNano,
	})
}

// AppendRecord is Append for a fully populated record — the entry point
// merge mutations use, carrying their Delta alongside the resulting
// state. rec.Seq is assigned by the WAL; a caller-set value is ignored.
func (w *WAL) AppendRecord(rec Record) (Ack, error) {
	p := &pending{done: make(chan error, 1)}
	w.mu.Lock()
	if err := w.unusableLocked(); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	rec.Seq = w.nextSeq
	w.nextSeq++
	p.seq = rec.Seq
	if rec.Folded == 0 {
		rec.Folded = 1
	}
	if w.opts.Sync.Mode == SyncCoalesce {
		// The record is held until its commit window flushes, so it must
		// not alias the caller's value buffer (framing policies copy into
		// the frame right here instead).
		if len(rec.Value) > 0 {
			rec.Value = append([]byte(nil), rec.Value...)
		}
		p.rec = rec
	} else {
		p.frame = appendFrame(nil, &rec)
	}
	w.queue = append(w.queue, p)
	w.mu.Unlock()
	w.appended.Add(1)
	w.kick()
	return p.wait, nil
}

// Sync blocks until every record appended before the call is written
// and fsynced — the barrier compaction and graceful shutdown use.
func (w *WAL) Sync() error {
	p := &pending{sync: true, done: make(chan error, 1)}
	w.mu.Lock()
	if err := w.unusableLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	w.queue = append(w.queue, p)
	w.mu.Unlock()
	w.kick()
	return p.wait()
}

func (w *WAL) unusableLocked() error {
	if w.closed {
		return ErrClosed
	}
	return w.failed
}

func (p *pending) wait() error { return <-p.done }

func (w *WAL) kick() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// ErrClosed reports use of a closed WAL.
var ErrClosed = fmt.Errorf("wal: closed")

// ErrAbandoned reports appends cut off by Abandon (the simulated
// crash): the record may or may not have reached disk.
var ErrAbandoned = fmt.Errorf("wal: abandoned (simulated crash)")

// fail latches the first error; every queued and future append reports
// it. A WAL failure is fail-stop: the in-memory store keeps serving but
// the server surfaces mutations as errors (see kv.Store.DurabilityErr).
func (w *WAL) fail(err error) {
	w.mu.Lock()
	if w.failed == nil {
		w.failed = err
	}
	w.mu.Unlock()
}

// takeQueue swaps out the pending queue.
func (w *WAL) takeQueue() []*pending {
	w.mu.Lock()
	q := w.queue
	w.queue = nil
	w.mu.Unlock()
	return q
}

// committer is the single goroutine that writes and fsyncs batches.
func (w *WAL) committer() {
	defer w.wg.Done()
	if w.opts.Sync.Mode == SyncCoalesce {
		w.coalescer()
		return
	}
	var timer *time.Timer
	var timerC <-chan time.Time
	dirty := false
	for {
		select {
		case <-w.wake:
		case <-timerC:
			timerC = nil
			if dirty {
				if err := w.syncActive(); err != nil {
					w.fail(err)
				}
				dirty = false
			}
			continue
		case <-w.quit:
			w.commitBatch(w.takeQueue(), &dirty, true)
			if dirty {
				if err := w.syncActive(); err != nil {
					w.fail(err)
				}
			}
			if timer != nil {
				timer.Stop()
			}
			return
		case <-w.abandon:
			w.failQueue(ErrAbandoned)
			if timer != nil {
				timer.Stop()
			}
			return
		}
		batch := w.takeQueue()
		if len(batch) == 0 {
			continue
		}
		w.commitBatch(batch, &dirty, false)
		if dirty && w.opts.Sync.Mode == SyncBatch && timerC == nil {
			if timer == nil {
				timer = time.NewTimer(w.opts.Sync.Window)
			} else {
				timer.Reset(w.opts.Sync.Window)
			}
			timerC = timer.C
		}
	}
}

// accum is one key's slot in the coalescer's per-window accumulator:
// the latest resulting state (last-write-wins), the number of mutations
// folded in, and the running merge-delta sum since the last overwrite.
type accum struct {
	rec    Record
	folded uint32
	delta  int64
}

func (a *accum) fold(r Record) {
	if r.Op == OpMerge {
		a.delta += r.Delta
	} else {
		a.delta = 0 // an overwrite resets the delta provenance
	}
	a.folded++
	a.rec = r
}

// flushRecord renders the accumulator slot as the one record its window
// persists. A slot holding a single plain mutation emits the classic
// record byte-for-byte; anything coalesced (or any merge) emits the
// OpMerge kind carrying the absolute resulting state plus the folded
// count and delta sum for inspection tooling.
func (a *accum) flushRecord() Record {
	if a.folded == 1 && a.rec.Op != OpMerge {
		return a.rec
	}
	out := a.rec
	out.Op = OpMerge
	out.Delta = a.delta
	out.Folded = a.folded
	out.Tombstone = a.rec.Op == OpDelete
	if out.Tombstone {
		out.Value = nil
	}
	return out
}

// coalescer is the committer variant for SyncCoalesce: appends fold
// into a per-key accumulator, and once per window (or at a Sync
// barrier, or on shutdown) the accumulator flushes one frame per
// distinct key, fsyncs, and only then acknowledges the window's
// writers. Disk bytes per window scale with distinct keys touched.
func (w *WAL) coalescer() {
	var timer *time.Timer
	var timerC <-chan time.Time
	acc := make(map[string]*accum)
	var waiters []*pending

	drain := func() (barrier bool) {
		for _, p := range w.takeQueue() {
			if !p.sync {
				a := acc[p.rec.Key]
				if a == nil {
					a = &accum{}
					acc[p.rec.Key] = a
				}
				a.fold(p.rec)
			} else {
				barrier = true
			}
			waiters = append(waiters, p)
		}
		return barrier
	}
	flush := func() {
		err := w.flushWindow(acc, waiters)
		if err != nil {
			w.fail(err)
		}
		w.complete(waiters, err)
		clear(acc)
		waiters = nil
	}

	for {
		select {
		case <-w.wake:
			if drain() {
				// A Sync barrier cannot wait out the window: compaction and
				// graceful shutdown depend on it flushing immediately.
				flush()
				if timerC != nil && !timer.Stop() {
					<-timer.C // consume the stale fire so Reset starts clean
				}
				timerC = nil
				continue
			}
			if len(waiters) > 0 && timerC == nil {
				if timer == nil {
					timer = time.NewTimer(w.opts.Sync.Window)
				} else {
					timer.Reset(w.opts.Sync.Window)
				}
				timerC = timer.C
			}
		case <-timerC:
			timerC = nil
			flush()
		case <-w.quit:
			drain()
			flush()
			if timer != nil {
				timer.Stop()
			}
			return
		case <-w.abandon:
			// Simulated kill -9: the open window dies unacknowledged.
			w.complete(waiters, ErrAbandoned)
			w.failQueue(ErrAbandoned)
			if timer != nil {
				timer.Stop()
			}
			return
		}
	}
}

// flushWindow persists one commit window: one frame per accumulator
// key, ordered by sequence number so on-disk order stays monotonic,
// then a single fsync. An empty accumulator (pure barrier) still
// fsyncs the active segment so Sync keeps its contract.
func (w *WAL) flushWindow(acc map[string]*accum, waiters []*pending) error {
	if len(acc) == 0 && len(waiters) == 0 {
		return nil
	}
	if len(acc) > 0 {
		flushed := make([]*pending, 0, len(acc))
		ops := uint64(0)
		for _, a := range acc {
			rec := a.flushRecord()
			flushed = append(flushed, &pending{frame: appendFrame(nil, &rec), seq: rec.Seq})
			ops += uint64(a.folded)
		}
		sort.Slice(flushed, func(i, j int) bool { return flushed[i].seq < flushed[j].seq })
		if err := w.writeFrames(flushed); err != nil {
			return err
		}
		w.coalescedOps.Add(ops)
		w.coalescedRecords.Add(uint64(len(flushed)))
		w.coalesceWindows.Add(1)
		w.hmu.Lock()
		w.batchHist.Observe(time.Duration(len(flushed)))
		w.windowKeysHist.Observe(time.Duration(len(flushed)))
		w.hmu.Unlock()
	}
	return w.syncActive()
}

// commitBatch writes one batch and applies the sync policy. closing
// forces an fsync regardless of policy (the graceful-shutdown flush).
func (w *WAL) commitBatch(batch []*pending, dirty *bool, closing bool) {
	if len(batch) == 0 {
		return
	}
	records := 0
	barrier := closing
	for _, p := range batch {
		if p.sync {
			barrier = true
		} else {
			records++
		}
	}
	err := w.writeFrames(batch)
	if err != nil {
		w.fail(err)
		w.complete(batch, err)
		return
	}
	if records > 0 {
		*dirty = true
		w.hmu.Lock()
		w.batchHist.Observe(time.Duration(records))
		w.hmu.Unlock()
	}
	switch {
	case w.opts.Sync.Mode == SyncAlways || barrier:
		if err := w.syncActive(); err != nil {
			w.fail(err)
			w.complete(batch, err)
			return
		}
		*dirty = false
		w.complete(batch, nil)
	default:
		// SyncBatch and SyncNone acknowledge after the OS write.
		w.complete(batch, nil)
	}
}

// writeFrames appends every record frame to the active segment,
// rotating at the size threshold.
func (w *WAL) writeFrames(batch []*pending) error {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	for _, p := range batch {
		if p.sync {
			continue
		}
		if w.seg != nil && w.segBytes > 0 && w.segBytes+int64(len(p.frame)) > w.opts.SegmentSize {
			if err := w.sealActiveLocked(); err != nil {
				return err
			}
		}
		if w.seg == nil {
			if err := w.openSegmentLocked(p.seq); err != nil {
				return err
			}
		}
		if _, err := w.seg.Write(p.frame); err != nil {
			return fmt.Errorf("wal: write segment %s: %w", w.segPath, err)
		}
		w.segBytes += int64(len(p.frame))
		w.segLast = p.seq
	}
	return nil
}

// openSegmentLocked creates the next segment file; fmu must be held.
func (w *WAL) openSegmentLocked(firstSeq uint64) error {
	path := filepath.Join(w.opts.Dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var file File = f
	if w.opts.WrapFile != nil {
		file = w.opts.WrapFile(file)
	}
	w.seg, w.segPath, w.segStart, w.segLast, w.segBytes = file, path, firstSeq, firstSeq-1, 0
	return syncDir(w.opts.Dir)
}

// sealActiveLocked fsyncs and closes the active segment, moving it to
// the sealed list; fmu must be held.
func (w *WAL) sealActiveLocked() error {
	if w.seg == nil {
		return nil
	}
	if err := w.seg.Sync(); err != nil {
		return fmt.Errorf("wal: sync segment %s: %w", w.segPath, err)
	}
	if err := w.seg.Close(); err != nil {
		return fmt.Errorf("wal: close segment %s: %w", w.segPath, err)
	}
	w.sealed = append(w.sealed, segmentMeta{
		path: w.segPath, firstSeq: w.segStart, lastSeq: w.segLast, bytes: w.segBytes,
	})
	w.seg = nil
	w.segPath = ""
	return nil
}

// syncActive fsyncs the active segment, recording the latency.
func (w *WAL) syncActive() error {
	w.fmu.Lock()
	seg, path := w.seg, w.segPath
	w.fmu.Unlock()
	if seg == nil {
		return nil
	}
	start := time.Now()
	if err := seg.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", path, err)
	}
	elapsed := time.Since(start)
	w.fsyncs.Add(1)
	w.hmu.Lock()
	w.fsyncHist.Observe(elapsed)
	w.hmu.Unlock()
	return nil
}

// complete releases a batch's waiters.
func (w *WAL) complete(batch []*pending, err error) {
	for _, p := range batch {
		p.done <- err
	}
}

// failQueue drains and fails everything pending.
func (w *WAL) failQueue(err error) {
	w.complete(w.takeQueue(), err)
}

// Close flushes the queue, fsyncs, and closes the active segment. The
// WAL is unusable afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit)
	w.wg.Wait()
	w.failQueue(ErrClosed) // races between close and append lose cleanly
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if w.seg != nil {
		err := w.seg.Close()
		w.seg = nil
		if err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// Abandon simulates kill -9: the committer stops without flushing,
// queued appends fail with ErrAbandoned, and nothing is fsynced. Bytes
// already written survive in the OS page cache exactly as they would a
// real SIGKILL; unsynced data is lost only to power failure. The chaos
// suite uses this to crash a server mid-workload in-process.
func (w *WAL) Abandon() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	if w.failed == nil {
		w.failed = ErrAbandoned
	}
	w.mu.Unlock()
	close(w.abandon)
	w.wg.Wait()
	w.failQueue(ErrAbandoned)
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if w.seg != nil {
		_ = w.seg.Close()
		w.seg = nil
	}
}

// LastSeq returns the highest assigned sequence number (0 before any
// append on a fresh log).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// Err returns the sticky failure, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// Snapshot is a point-in-time view of the WAL's operational state.
type Snapshot struct {
	// Segments counts live segment files (sealed plus active).
	Segments int
	// Bytes is the byte total across live segments.
	Bytes int64
	// LastSeq is the highest assigned sequence number.
	LastSeq uint64
	// SnapshotSeq is the sequence covered by the newest on-disk store
	// snapshot (0 = none).
	SnapshotSeq uint64
	// Appended counts records accepted since Open.
	Appended uint64
	// Fsyncs counts fsync calls on the append path since Open.
	Fsyncs uint64
	// Policy is the sync policy string.
	Policy string
	// FsyncLatency is the append-path fsync latency distribution.
	FsyncLatency metrics.HistogramSnapshot
	// BatchRecords is the group-commit batch size distribution (records
	// per committed write batch; one observation per batch).
	BatchRecords metrics.HistogramSnapshot
	// CoalescedOps counts mutations folded into coalesced commit
	// windows (SyncCoalesce only); CoalescedRecords counts the records
	// those windows actually flushed — their ratio is the dedup factor.
	CoalescedOps     uint64
	CoalescedRecords uint64
	// CoalesceWindows counts commit-window flushes.
	CoalesceWindows uint64
	// WindowKeys is the distinct-keys-per-flushed-window distribution.
	WindowKeys metrics.HistogramSnapshot
}

// Stats snapshots the WAL's operational state for /stats and /metrics.
func (w *WAL) Stats() Snapshot {
	snap := Snapshot{
		Appended:         w.appended.Load(),
		Fsyncs:           w.fsyncs.Load(),
		CoalescedOps:     w.coalescedOps.Load(),
		CoalescedRecords: w.coalescedRecords.Load(),
		CoalesceWindows:  w.coalesceWindows.Load(),
		Policy:           w.opts.Sync.String(),
		LastSeq:          w.LastSeq(),
	}
	w.fmu.Lock()
	snap.SnapshotSeq = w.snapSeq
	for _, m := range w.sealed {
		snap.Bytes += m.bytes
	}
	snap.Segments = len(w.sealed)
	if w.seg != nil {
		snap.Segments++
		snap.Bytes += w.segBytes
	}
	w.fmu.Unlock()
	w.hmu.Lock()
	snap.FsyncLatency = w.fsyncHist.Snapshot()
	snap.BatchRecords = w.batchHist.Snapshot()
	snap.WindowKeys = w.windowKeysHist.Snapshot()
	w.hmu.Unlock()
	return snap
}
