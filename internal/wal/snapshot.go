package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Compact bounds the log: it captures the current last sequence S,
// waits until everything up to S is written and fsynced, writes a store
// snapshot atomically (temp file, fsync, rename, directory fsync) named
// for S, seals the active segment, and removes every segment whose
// records are all <= S plus any older snapshots. write receives the
// snapshot file and must emit a store state that includes every
// mutation up to S — handing it kv's Store.SaveTo satisfies that
// because mutations apply to the store before their WAL append is
// enqueued. A mutation racing past S during the snapshot is harmless:
// its record is in a retained segment and replay is idempotent (exact
// versions, last write per key wins).
//
// It returns the number of segment files removed.
func (w *WAL) Compact(write func(io.Writer) error) (removed int, err error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return 0, err
	}
	s := w.nextSeq - 1
	w.mu.Unlock()

	if err := w.Sync(); err != nil {
		return 0, fmt.Errorf("wal: compact barrier: %w", err)
	}
	if err := writeSnapshotFile(filepath.Join(w.opts.Dir, snapName(s)), write); err != nil {
		return 0, err
	}

	w.fmu.Lock()
	defer w.fmu.Unlock()
	if err := w.sealActiveLocked(); err != nil {
		return 0, err
	}
	keep := w.sealed[:0]
	for _, m := range w.sealed {
		if m.lastSeq <= s {
			if rerr := os.Remove(m.path); rerr != nil {
				return removed, fmt.Errorf("wal: drop segment: %w", rerr)
			}
			removed++
			continue
		}
		keep = append(keep, m)
	}
	w.sealed = keep
	// Drop superseded snapshots.
	if entries, derr := os.ReadDir(w.opts.Dir); derr == nil {
		for _, ent := range entries {
			name := ent.Name()
			if !strings.HasSuffix(name, snapSuffix) {
				continue
			}
			if seq, perr := seqFromName(name, snapSuffix); perr == nil && seq < s {
				_ = os.Remove(filepath.Join(w.opts.Dir, name))
			}
		}
	}
	w.snapSeq, w.hasSnap = s, true
	return removed, syncDir(w.opts.Dir)
}

// writeSnapshotFile publishes a snapshot atomically: write to a temp
// file, fsync it, rename into place, fsync the directory. A crash at
// any point leaves either the old state or the new — never a truncated
// snapshot (leftover temp files are removed at Open).
func writeSnapshotFile(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create snapshot temp: %w", err)
	}
	if err := write(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so entry creations, renames, and removals
// survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: sync dir: %w", serr)
	}
	return cerr
}
