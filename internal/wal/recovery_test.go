package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// buildLog writes n records through a fresh WAL and closes it.
func buildLog(t *testing.T, dir string, segmentSize int64, n int) {
	t.Helper()
	w, err := Open(Options{Dir: dir, SegmentSize: segmentSize})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < n; i++ {
		mustAppend(t, w, OpPut, fmt.Sprintf("key-%03d", i), "0123456789abcdef", uint64(i+1))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// frameOffsets parses a segment file and returns each frame's offset.
func frameOffsets(t *testing.T, path string) []int64 {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	off := int64(0)
	for off < int64(len(b)) {
		_, n, derr := decodeFrame(b[off:])
		if derr != nil || n == 0 {
			t.Fatalf("pre-doctoring scan failed at %d: %v", off, derr)
		}
		offs = append(offs, off)
		off += int64(n)
	}
	return offs
}

func TestRecoverEmptyLog(t *testing.T) {
	dir := t.TempDir()
	_, recs, rep := collect(t, dir, Options{})
	if len(recs) != 0 || rep.RecordsApplied != 0 || rep.SnapshotLoaded || rep.TornTail || rep.SegmentsScanned != 0 {
		t.Fatalf("empty dir: recs=%d report=%+v", len(recs), rep)
	}
	// A present-but-empty segment file is also a clean empty log.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, segName(1)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs2, rep2 := collect(t, dir2, Options{})
	if len(recs2) != 0 || rep2.TornTail {
		t.Fatalf("empty segment: recs=%d report=%+v", len(recs2), rep2)
	}
}

func TestRecoverTornTailRecord(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir, 1<<20, 5)
	segs := segmentPaths(t, dir)
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	// Simulate a crash mid-append: a partial frame at the tail.
	partial := appendFrame(nil, &Record{Seq: 6, Op: OpPut, Key: "torn", Value: []byte("half-written")})
	f, err := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(partial[:len(partial)-7]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	state, recs, rep := collect(t, dir, Options{})
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
	if !rep.TornTail {
		t.Fatalf("torn tail not reported: %+v", rep)
	}
	if _, ok := state["torn"]; ok {
		t.Fatal("partial record must not replay")
	}

	// The tail was truncated at Open, so appends resume cleanly and the
	// next sequence number follows the last durable record.
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := w.Recover(nil, nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	mustAppend(t, w, OpPut, "fresh", "v", 6)
	if got := w.LastSeq(); got != 6 {
		t.Fatalf("LastSeq = %d, want 6", got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, recs2, rep2 := collect(t, dir, Options{})
	if len(recs2) != 6 || rep2.TornTail {
		t.Fatalf("after resume: %d records, report %+v", len(recs2), rep2)
	}
}

func TestRecoverSkipsCorruptRecordMidSegment(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir, 256, 20) // forces several segments
	segs := segmentPaths(t, dir)
	if len(segs) < 2 {
		t.Fatalf("%d segments, want >= 2", len(segs))
	}
	// Flip a payload byte in the middle record of the FIRST (sealed)
	// segment: its CRC fails, recovery must skip it and keep going.
	victim := segs[0]
	offs := frameOffsets(t, victim)
	if len(offs) < 3 {
		t.Fatalf("first segment has %d records, want >= 3", len(offs))
	}
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	mid := offs[1]
	b[mid+frameHeaderLen+3] ^= 0x40
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}

	state, recs, rep := collect(t, dir, Options{SegmentSize: 256})
	if len(recs) != 19 {
		t.Fatalf("recovered %d records, want 19 (one skipped)", len(recs))
	}
	if len(rep.Skipped) != 1 {
		t.Fatalf("skip report = %+v, want exactly one span", rep.Skipped)
	}
	sk := rep.Skipped[0]
	if sk.Segment != filepath.Base(victim) || sk.Offset != mid {
		t.Fatalf("skip span = %+v, want segment %s offset %d", sk, filepath.Base(victim), mid)
	}
	if rep.TornTail {
		t.Fatal("mid-segment corruption is not a torn tail")
	}
	// Records after the corrupt one in the same segment still applied.
	if _, ok := state["key-002"]; !ok {
		t.Fatal("record after the corrupt span was lost")
	}
	// Inspect sees the same damage offline.
	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if !info.Corrupt() {
		t.Fatal("Inspect missed the corruption")
	}
}

func TestRecoverSnapshotNewerThanAllSegments(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir, 1<<20, 5) // records seq 1..5
	// A snapshot claiming coverage through seq 10 supersedes every
	// segment record on disk.
	if err := os.WriteFile(filepath.Join(dir, snapName(10)), []byte("authoritative"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var loaded []byte
	applied := 0
	rep, err := w.Recover(
		func(r io.Reader) error { var e error; loaded, e = io.ReadAll(r); return e },
		func(Record) error { applied++; return nil },
	)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rep.SnapshotLoaded || rep.SnapshotSeq != 10 {
		t.Fatalf("report = %+v, want snapshot @10", rep)
	}
	if string(loaded) != "authoritative" {
		t.Fatalf("snapshot body = %q", loaded)
	}
	if applied != 0 || rep.RecordsApplied != 0 {
		t.Fatalf("%d records applied, want 0 (all covered)", applied)
	}
	// New appends continue past the snapshot's sequence.
	mustAppend(t, w, OpPut, "k", "v", 1)
	if got := w.LastSeq(); got != 11 {
		t.Fatalf("LastSeq = %d, want 11", got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRecoverCorruptLengthAbandonsSealedRemainder(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir, 256, 20)
	segs := segmentPaths(t, dir)
	if len(segs) < 2 {
		t.Fatalf("%d segments, want >= 2", len(segs))
	}
	// Destroy a sealed segment's length field with an implausible value:
	// no resynchronization is possible, the segment's remainder is
	// reported as one skipped span, and later segments still replay.
	victim := segs[0]
	offs := frameOffsets(t, victim)
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	perSegment := len(offs)
	mid := offs[1]
	b[mid] = 0xff // length becomes ~4 GiB
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, rep := collect(t, dir, Options{SegmentSize: 256})
	wantLost := perSegment - 1 // everything in the victim after record 1
	if len(recs) != 20-wantLost {
		t.Fatalf("recovered %d records, want %d", len(recs), 20-wantLost)
	}
	if len(rep.Skipped) != 1 {
		t.Fatalf("skip report = %+v", rep.Skipped)
	}
}
