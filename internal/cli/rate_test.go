package cli

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/dist"
)

func TestParseRate(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1200", 1200},
		{"0.5", 0.5},
		{"12k", 12000},
		{"12K", 12000},
		{"1.5M", 1.5e6},
		{"2M", 2e6},
	}
	for _, c := range cases {
		got, err := ParseRate(c.in)
		if err != nil {
			t.Fatalf("ParseRate(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseRate(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "0", "-5", "5q", "k", "1.2.3", "5 k"} {
		if _, err := ParseRate(bad); err == nil {
			t.Fatalf("ParseRate(%q) should error", bad)
		}
	}
}

func TestParseRates(t *testing.T) {
	got, err := ParseRates("2k, 5k,10000")
	if err != nil {
		t.Fatalf("ParseRates: %v", err)
	}
	want := []float64{2000, 5000, 10000}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := ParseRates("2k,,5k"); err == nil {
		t.Fatal("empty element should error")
	}
}

func TestParseArrival(t *testing.T) {
	for spec, want := range map[string]string{
		"":                 "*dist.Poisson",
		"poisson":          "*dist.Poisson",
		"fixed":            "*dist.FixedRate",
		"onoff:50ms:150ms": "*dist.OnOff",
	} {
		f, err := ParseArrival(spec)
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", spec, err)
		}
		p, err := f(1000)
		if err != nil {
			t.Fatalf("factory(%q): %v", spec, err)
		}
		switch want {
		case "*dist.Poisson":
			if _, ok := p.(*dist.Poisson); !ok {
				t.Fatalf("ParseArrival(%q) built %T", spec, p)
			}
		case "*dist.FixedRate":
			if _, ok := p.(*dist.FixedRate); !ok {
				t.Fatalf("ParseArrival(%q) built %T", spec, p)
			}
		case "*dist.OnOff":
			o, ok := p.(*dist.OnOff)
			if !ok {
				t.Fatalf("ParseArrival(%q) built %T", spec, p)
			}
			if o.OnMean != 50*time.Millisecond || o.OffMean != 150*time.Millisecond {
				t.Fatalf("onoff means %v/%v, want 50ms/150ms", o.OnMean, o.OffMean)
			}
		}
	}
	for _, bad := range []string{"onoff", "onoff:1s", "onoff:0s:1s", "onoff:1s:-1s", "weibull", "poisson:2"} {
		if _, err := ParseArrival(bad); err == nil {
			t.Fatalf("ParseArrival(%q) should error", bad)
		}
	}
}
