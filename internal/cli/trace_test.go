package cli

import (
	"strings"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/kv"
)

func sampleTrace() kv.RequestTrace {
	return kv.RequestTrace{
		Seq:            7,
		RCT:            4 * time.Millisecond,
		Fanout:         3,
		StragglerIndex: 1,
		Ops: []kv.OpTrace{
			{Index: 0, Key: "alpha", Server: 1, Replicas: 2, Attempts: 1,
				Start: 10 * time.Microsecond, End: time.Millisecond,
				Wait: 100 * time.Microsecond, Service: 400 * time.Microsecond,
				Class: "srpt-first", Bytes: 12, Found: true},
			{Index: 1, Key: "bravo", Server: 2, Replicas: 2, Attempts: 2,
				Start: 15 * time.Microsecond, End: 4 * time.Millisecond,
				Wait: 2 * time.Millisecond, Service: time.Millisecond,
				Class: "lrpt-last", Bytes: 9000, Found: true, Straggler: true},
			{Index: 2, Key: "charlie", Server: 3, Replicas: 2, Attempts: 1,
				Start: 12 * time.Microsecond, End: 800 * time.Microsecond,
				Class: "srpt-first", Found: false},
		},
	}
}

func TestRenderTrace(t *testing.T) {
	var sb strings.Builder
	RenderTrace(&sb, sampleTrace())
	out := sb.String()
	for _, want := range []string{
		"request #7",
		"fanout=3",
		"rct=4ms",
		"alpha", "bravo", "charlie",
		"s2", // straggler's server in the table
		"lrpt-last",
		"not found",
		"* straggler: bravo on s2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
	// The straggler's bar must be flagged and reach the full timeline
	// width; the fast op's must not.
	var straggler, fast string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") && strings.Contains(line, "bravo") {
			straggler = line
		}
		if strings.Contains(line, "|") && strings.Contains(line, "alpha") {
			fast = line
		}
	}
	if straggler == "" || fast == "" {
		t.Fatalf("timeline rows missing:\n%s", out)
	}
	if !strings.Contains(straggler, "*|") {
		t.Fatalf("straggler row not flagged: %q", straggler)
	}
	if strings.Count(straggler, "=") <= strings.Count(fast, "=") {
		t.Fatalf("straggler bar (%d) not longer than fast bar (%d)",
			strings.Count(straggler, "="), strings.Count(fast, "="))
	}
}

func TestRenderTracePartialAndEmpty(t *testing.T) {
	var sb strings.Builder
	tr := sampleTrace()
	tr.Partial = true
	tr.Ops[2].Err = "boom"
	RenderTrace(&sb, tr)
	if out := sb.String(); !strings.Contains(out, "PARTIAL") || !strings.Contains(out, "ERROR boom") {
		t.Fatalf("partial trace output:\n%s", out)
	}

	sb.Reset()
	RenderTrace(&sb, kv.RequestTrace{Seq: 1, StragglerIndex: -1})
	if out := sb.String(); strings.Contains(out, "KEY") {
		t.Fatalf("empty trace should have no table:\n%s", out)
	}
}
