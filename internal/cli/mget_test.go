package cli

import (
	"errors"
	"strings"
	"testing"

	"github.com/daskv/daskv/internal/kv"
)

func TestRenderMGetAllResolved(t *testing.T) {
	var b strings.Builder
	err := RenderMGet(&b, []string{"a", "b", "missing"},
		map[string][]byte{"a": []byte("1"), "b": []byte("2")}, nil)
	if err != nil {
		t.Fatalf("RenderMGet: %v", err)
	}
	want := "a = 1\nb = 2\nmissing   (not found)\n"
	if b.String() != want {
		t.Fatalf("rendered %q, want %q", b.String(), want)
	}
}

func TestRenderMGetPartial(t *testing.T) {
	var b strings.Builder
	perr := &kv.PartialError{Errs: map[string]error{
		"dead": kv.ErrUnavailable,
	}}
	err := RenderMGet(&b, []string{"ok", "dead", "gone"},
		map[string][]byte{"ok": []byte("v")}, perr)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("RenderMGet error %v, want ErrDegraded", err)
	}
	out := b.String()
	for _, line := range []string{
		"ok = v\n",
		"dead   ERROR " + kv.ErrUnavailable.Error() + "\n",
		"gone   (not found)\n",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("output %q missing line %q", out, line)
		}
	}
	if !strings.Contains(err.Error(), "1 of 3 keys failed") {
		t.Fatalf("summary %q lacks failure count", err)
	}
}

func TestRenderMGetKeyOrderPreserved(t *testing.T) {
	var b strings.Builder
	res := map[string][]byte{"z": []byte("26"), "a": []byte("1"), "m": []byte("13")}
	if err := RenderMGet(&b, []string{"z", "a", "m"}, res, nil); err != nil {
		t.Fatalf("RenderMGet: %v", err)
	}
	if got, want := b.String(), "z = 26\na = 1\nm = 13\n"; got != want {
		t.Fatalf("rendered %q, want caller order %q", got, want)
	}
}

func TestRenderMGetWholesaleFailurePassesThrough(t *testing.T) {
	var b strings.Builder
	cause := errors.New("dial refused")
	err := RenderMGet(&b, []string{"a"}, nil, cause)
	if err != cause {
		t.Fatalf("RenderMGet error %v, want the original %v", err, cause)
	}
	if b.Len() != 0 {
		t.Fatalf("rendered %q on wholesale failure, want nothing", b.String())
	}
}
