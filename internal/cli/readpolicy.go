package cli

import (
	"fmt"
	"strings"

	"github.com/daskv/daskv/internal/kv"
)

// ParseReadPolicy resolves a replica read-routing name for the live
// client. Names (and aliases) mirror the replica package's selection
// policies; the empty string means primary.
func ParseReadPolicy(name string) (kv.ReadPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "primary", "":
		return kv.PrimaryRead, nil
	case "adaptive", "fastest", "tars":
		return kv.FastestRead, nil
	case "round-robin", "roundrobin", "rr":
		return kv.RoundRobinRead, nil
	case "least-outstanding", "leastoutstanding", "lo":
		return kv.LeastOutstandingRead, nil
	case "random":
		return kv.RandomRead, nil
	default:
		return 0, fmt.Errorf("cli: unknown read policy %q (want one of %s)",
			name, strings.Join(ReadPolicyNames(), ", "))
	}
}

// ReadPolicyNames lists the accepted canonical read-policy names.
func ReadPolicyNames() []string {
	return []string{"primary", "adaptive", "round-robin", "least-outstanding", "random"}
}
