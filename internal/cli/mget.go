package cli

import (
	"errors"
	"fmt"
	"io"

	"github.com/daskv/daskv/internal/kv"
)

// ErrDegraded reports a multiget that returned partial results: some
// keys resolved, others carry per-key errors. Command mains map it to a
// distinct exit code (kvctl uses 2) so scripts can tell "some data,
// degraded" apart from both success (0) and outright failure (1).
var ErrDegraded = errors.New("degraded multiget")

// RenderMGet writes one line per requested key — its value, a
// not-found marker, or the per-key error of a degraded multiget — in
// the caller's key order. It returns nil when every key resolved, an
// ErrDegraded-wrapping error when some keys failed, and err itself
// untouched (nothing rendered) when the multiget failed wholesale.
func RenderMGet(w io.Writer, keys []string, res map[string][]byte, err error) error {
	var perr *kv.PartialError
	if err != nil && !errors.As(err, &perr) {
		return err
	}
	for _, k := range keys {
		if v, ok := res[k]; ok {
			fmt.Fprintf(w, "%s = %s\n", k, v)
			continue
		}
		if perr != nil {
			if kerr, failed := perr.Errs[k]; failed {
				fmt.Fprintf(w, "%s   ERROR %v\n", k, kerr)
				continue
			}
		}
		fmt.Fprintf(w, "%s   (not found)\n", k)
	}
	if perr != nil {
		return fmt.Errorf("%w: %d of %d keys failed", ErrDegraded, len(perr.Errs), len(keys))
	}
	return nil
}
