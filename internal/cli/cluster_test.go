package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadCluster(t *testing.T) {
	p := writeTemp(t, `{"servers":[{"id":0,"addr":"a:1"},{"id":3,"addr":"b:2"}]}`)
	got, err := LoadCluster(p)
	if err != nil {
		t.Fatalf("LoadCluster: %v", err)
	}
	if len(got) != 2 || got[0] != "a:1" || got[3] != "b:2" {
		t.Fatalf("LoadCluster = %v", got)
	}
}

func TestLoadClusterErrors(t *testing.T) {
	if _, err := LoadCluster(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
	for _, content := range []string{
		`{bad json`,
		`{"servers":[]}`,
		`{"servers":[{"id":1}]}`,
		`{"servers":[{"id":1,"addr":"a"},{"id":1,"addr":"b"}]}`,
	} {
		p := writeTemp(t, content)
		if _, err := LoadCluster(p); err == nil {
			t.Fatalf("content %q should error", content)
		}
	}
}
