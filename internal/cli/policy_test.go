package cli

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
)

func TestParsePolicyAll(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name, core.DefaultOptions())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.Factory == nil {
			t.Fatalf("ParsePolicy(%q): nil factory", name)
		}
		q := p.Factory(1)
		if q == nil {
			t.Fatalf("ParsePolicy(%q): factory returned nil", name)
		}
	}
}

func TestParsePolicyAliases(t *testing.T) {
	for _, alias := range []string{"rein", "rein-sbf", "SBF", "Rein-ML", "leastslack"} {
		if _, err := ParsePolicy(alias, core.DefaultOptions()); err != nil {
			t.Fatalf("alias %q rejected: %v", alias, err)
		}
	}
}

func TestParsePolicyUnknown(t *testing.T) {
	if _, err := ParsePolicy("nope", core.DefaultOptions()); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestParsePolicyBadDASOptions(t *testing.T) {
	if _, err := ParsePolicy("das", core.Options{Alpha: -1}); err == nil {
		t.Fatal("invalid DAS options should error")
	}
}

func TestParsePolicyAdaptiveFlags(t *testing.T) {
	das, _ := ParsePolicy("das", core.DefaultOptions())
	if !das.Adaptive {
		t.Fatal("das should be adaptive")
	}
	static, _ := ParsePolicy("das-static", core.DefaultOptions())
	if static.Adaptive {
		t.Fatal("das-static should not be adaptive")
	}
	fcfs, _ := ParsePolicy("fcfs", core.DefaultOptions())
	if fcfs.Adaptive {
		t.Fatal("fcfs should not be adaptive")
	}
}

func TestParseDemand(t *testing.T) {
	cases := map[string]time.Duration{
		"exp:1ms":                  time.Millisecond,
		"det:2ms":                  2 * time.Millisecond,
		"unif:1ms:3ms":             2 * time.Millisecond,
		"bimodal:500us:5500us:0.9": time.Millisecond,
		"lognorm:1ms:1.5":          time.Millisecond,
	}
	for spec, wantMean := range cases {
		d, err := ParseDemand(spec)
		if err != nil {
			t.Fatalf("ParseDemand(%q): %v", spec, err)
		}
		if got := d.Mean(); got < wantMean*99/100 || got > wantMean*101/100 {
			t.Fatalf("ParseDemand(%q).Mean() = %v, want ~%v", spec, got, wantMean)
		}
	}
	if d, err := ParseDemand("pareto:320us:100ms:1.48"); err != nil || d == nil {
		t.Fatalf("pareto spec rejected: %v", err)
	}
}

func TestParseDemandBad(t *testing.T) {
	for _, spec := range []string{"", "exp", "exp:zzz", "exp:-1ms", "unif:3ms:1ms",
		"bimodal:1ms:2ms:2", "magic:1ms", "lognorm:1ms:-1"} {
		if _, err := ParseDemand(spec); err == nil {
			t.Fatalf("ParseDemand(%q) should error", spec)
		}
	}
}

func TestParseFanout(t *testing.T) {
	cases := map[string]float64{
		"const:4":  4,
		"unif:1:7": 4,
		"geom:5":   5,
	}
	for spec, wantMean := range cases {
		f, err := ParseFanout(spec)
		if err != nil {
			t.Fatalf("ParseFanout(%q): %v", spec, err)
		}
		if got := f.Mean(); got != wantMean {
			t.Fatalf("ParseFanout(%q).Mean() = %v, want %v", spec, got, wantMean)
		}
	}
	z, err := ParseFanout("zipf:20:1.0")
	if err != nil {
		t.Fatalf("zipf spec: %v", err)
	}
	if _, ok := z.(*dist.ZipfInt); !ok {
		t.Fatalf("zipf spec built %T", z)
	}
}

func TestParseFanoutBad(t *testing.T) {
	for _, spec := range []string{"", "const:0", "unif:7:1", "zipf:0:1", "geom:0.5", "what:3"} {
		if _, err := ParseFanout(spec); err == nil {
			t.Fatalf("ParseFanout(%q) should error", spec)
		}
	}
}

func TestParseServers(t *testing.T) {
	got, err := ParseServers("0=127.0.0.1:7100, 1=host:7101")
	if err != nil {
		t.Fatalf("ParseServers: %v", err)
	}
	if len(got) != 2 || got[0] != "127.0.0.1:7100" || got[1] != "host:7101" {
		t.Fatalf("ParseServers = %v", got)
	}
}

func TestParseServersErrors(t *testing.T) {
	for _, spec := range []string{"", "noequals", "x=addr", "1=", "1=a,1=b", ","} {
		if _, err := ParseServers(spec); err == nil {
			t.Fatalf("ParseServers(%q) should error", spec)
		}
	}
}
