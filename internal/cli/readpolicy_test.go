package cli

import (
	"testing"

	"github.com/daskv/daskv/internal/kv"
)

func TestParseReadPolicy(t *testing.T) {
	cases := map[string]kv.ReadPolicy{
		"":                  kv.PrimaryRead,
		"primary":           kv.PrimaryRead,
		"Adaptive":          kv.FastestRead,
		"fastest":           kv.FastestRead,
		"tars":              kv.FastestRead,
		"rr":                kv.RoundRobinRead,
		"round-robin":       kv.RoundRobinRead,
		"lo":                kv.LeastOutstandingRead,
		"least-outstanding": kv.LeastOutstandingRead,
		"random":            kv.RandomRead,
	}
	for in, want := range cases {
		got, err := ParseReadPolicy(in)
		if err != nil {
			t.Fatalf("ParseReadPolicy(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseReadPolicy(%q) = %d, want %d", in, got, want)
		}
	}
	if _, err := ParseReadPolicy("bogus"); err == nil {
		t.Fatal("bogus read policy should error")
	}
	if len(ReadPolicyNames()) != 5 {
		t.Fatalf("ReadPolicyNames = %v, want 5 entries", ReadPolicyNames())
	}
}
