package cli

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/daskv/daskv/internal/sched"
)

// ClusterFile is the on-disk cluster description shared by kvserver and
// kvctl: a JSON document listing every node's identity and address.
//
//	{"servers": [{"id": 0, "addr": "10.0.0.1:7100"},
//	             {"id": 1, "addr": "10.0.0.2:7100"}]}
type ClusterFile struct {
	Servers []ClusterNode `json:"servers"`
}

// ClusterNode is one entry of a ClusterFile.
type ClusterNode struct {
	ID   int    `json:"id"`
	Addr string `json:"addr"`
}

// LoadCluster reads and validates a cluster file, returning the
// id -> address map the live-store client expects.
func LoadCluster(path string) (map[sched.ServerID]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cli: read cluster file: %w", err)
	}
	var cf ClusterFile
	if err := json.Unmarshal(raw, &cf); err != nil {
		return nil, fmt.Errorf("cli: parse cluster file %s: %w", path, err)
	}
	if len(cf.Servers) == 0 {
		return nil, fmt.Errorf("cli: cluster file %s lists no servers", path)
	}
	out := make(map[sched.ServerID]string, len(cf.Servers))
	for _, n := range cf.Servers {
		if n.Addr == "" {
			return nil, fmt.Errorf("cli: cluster file %s: server %d has no address", path, n.ID)
		}
		id := sched.ServerID(n.ID)
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("cli: cluster file %s: duplicate server id %d", path, n.ID)
		}
		out[id] = n.Addr
	}
	return out, nil
}
