package cli

import (
	"testing"

	"github.com/daskv/daskv/internal/dist"
)

func TestParseByteSize(t *testing.T) {
	cases := map[string]dist.ByteSize{
		"const:4096":             dist.ConstBytes{N: 4096},
		"const:64KiB":            dist.ConstBytes{N: 64 << 10},
		"pareto:1KiB:4MiB:0.5":   dist.ParetoBytes{Lo: 1 << 10, Hi: 4 << 20, Alpha: 0.5},
		"pareto:512:1GiB:1.2":    dist.ParetoBytes{Lo: 512, Hi: 1 << 30, Alpha: 1.2},
		"lognorm:16KiB:1.5":      dist.LognormalBytes{M: 16 << 10, Sigma: 1.5},
		"lognorm:16KiB:1.5:4MiB": dist.LognormalBytes{M: 16 << 10, Sigma: 1.5, Cap: 4 << 20},
	}
	for spec, want := range cases {
		got, err := ParseByteSize(spec)
		if err != nil {
			t.Fatalf("ParseByteSize(%q): %v", spec, err)
		}
		if got != want {
			t.Fatalf("ParseByteSize(%q) = %#v, want %#v", spec, got, want)
		}
	}
}

func TestParseByteSizeErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"const",
		"const:0",
		"const:-5",
		"const:4KB", // decimal suffixes are not accepted
		"pareto:1KiB:4MiB",
		"pareto:4MiB:1KiB:0.5", // inverted bounds
		"pareto:1KiB:4MiB:0",
		"lognorm:16KiB",
		"lognorm:16KiB:0",
		"lognorm:16KiB:1.5:bad",
		"zipf:10:1",
	} {
		if _, err := ParseByteSize(spec); err == nil {
			t.Fatalf("ParseByteSize(%q) accepted", spec)
		}
	}
}
