package cli

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/daskv/daskv/internal/dist"
)

// ParseByteSize parses a value-size distribution spec:
//
//	const:N            every value is N bytes
//	pareto:LO:HI:A     bounded Pareto on [LO, HI] with shape A
//	lognorm:M:SIGMA    lognormal with mean M, shape SIGMA
//	lognorm:M:SIGMA:C  same, samples capped at C
//
// Byte quantities accept KiB/MiB/GiB suffixes (e.g. 64KiB, 4MiB) or
// plain byte counts.
func ParseByteSize(spec string) (dist.ByteSize, error) {
	parts := strings.Split(spec, ":")
	bad := func() (dist.ByteSize, error) {
		return nil, fmt.Errorf("cli: bad value-size spec %q", spec)
	}
	switch parts[0] {
	case "const":
		if len(parts) != 2 {
			return bad()
		}
		if n, ok := parseBytes(parts[1]); ok {
			return dist.ConstBytes{N: n}, nil
		}
	case "pareto":
		if len(parts) != 4 {
			return bad()
		}
		lo, ok1 := parseBytes(parts[1])
		hi, ok2 := parseBytes(parts[2])
		a, err := strconv.ParseFloat(parts[3], 64)
		if err == nil && ok1 && ok2 && hi >= lo && a > 0 {
			return dist.ParetoBytes{Lo: lo, Hi: hi, Alpha: a}, nil
		}
	case "lognorm":
		if len(parts) != 3 && len(parts) != 4 {
			return bad()
		}
		m, ok := parseBytes(parts[1])
		sig, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || !ok || sig <= 0 {
			return bad()
		}
		var c int64
		if len(parts) == 4 {
			cap, ok := parseBytes(parts[3])
			if !ok {
				return bad()
			}
			c = cap
		}
		return dist.LognormalBytes{M: float64(m), Sigma: sig, Cap: c}, nil
	}
	return bad()
}

// parseBytes parses a positive byte quantity with an optional binary
// suffix: "512", "64KiB", "4MiB", "1GiB".
func parseBytes(s string) (int64, bool) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n * mult, true
}
