// Package cli holds helpers shared by the command-line tools: policy
// name parsing and duration-distribution construction from flag values.
package cli

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sched"
)

// ParseServers decodes a cluster spec of the form
// "0=host:port,1=host:port" into the id -> address map the live-store
// client expects.
func ParseServers(spec string) (map[sched.ServerID]string, error) {
	out := make(map[sched.ServerID]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cli: bad server spec %q (want id=addr)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil {
			return nil, fmt.Errorf("cli: bad server id %q: %w", id, err)
		}
		if addr = strings.TrimSpace(addr); addr == "" {
			return nil, fmt.Errorf("cli: empty address for server %d", n)
		}
		if _, dup := out[sched.ServerID(n)]; dup {
			return nil, fmt.Errorf("cli: duplicate server id %d", n)
		}
		out[sched.ServerID(n)] = addr
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cli: no servers in %q", spec)
	}
	return out, nil
}

// Policy is a named scheduling configuration selectable from the CLIs.
type Policy struct {
	// Name is the canonical CLI spelling.
	Name string
	// Factory builds per-server queues.
	Factory sched.Factory
	// Adaptive marks policies that want DAS feedback tagging.
	Adaptive bool
}

// ParsePolicy resolves a CLI policy name. DAS options apply to the das
// variants only.
func ParsePolicy(name string, opts core.Options) (Policy, error) {
	switch strings.ToLower(name) {
	case "fcfs":
		return Policy{Name: "fcfs", Factory: sched.FCFSFactory}, nil
	case "random":
		return Policy{Name: "random", Factory: sched.RandomFactory}, nil
	case "sjf":
		return Policy{Name: "sjf", Factory: sched.SJFFactory}, nil
	case "sbf", "rein", "rein-sbf":
		return Policy{Name: "sbf", Factory: sched.ReinSBFFactory}, nil
	case "reinml", "rein-ml":
		return Policy{Name: "reinml", Factory: sched.ReinMLFactory(2 * time.Millisecond)}, nil
	case "lrpt":
		return Policy{Name: "lrpt", Factory: sched.LRPTFactory}, nil
	case "slack", "leastslack":
		return Policy{Name: "slack", Factory: sched.LeastSlackFactory, Adaptive: true}, nil
	case "das":
		if _, err := core.New(opts); err != nil {
			return Policy{}, fmt.Errorf("cli: %w", err)
		}
		return Policy{Name: "das", Factory: core.Factory(opts), Adaptive: true}, nil
	case "das-static":
		if _, err := core.New(opts); err != nil {
			return Policy{}, fmt.Errorf("cli: %w", err)
		}
		return Policy{Name: "das-static", Factory: core.Factory(opts)}, nil
	default:
		return Policy{}, fmt.Errorf("cli: unknown policy %q (want one of %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
}

// PolicyNames lists the accepted canonical policy names.
func PolicyNames() []string {
	names := []string{"fcfs", "random", "sjf", "sbf", "reinml", "lrpt", "slack", "das", "das-static"}
	sort.Strings(names)
	return names
}

// ParseDemand builds a demand distribution from a CLI spec:
//
//	exp:MEAN | det:VALUE | unif:LO:HI | bimodal:SMALL:LARGE:PSMALL |
//	pareto:LO:HI:ALPHA | lognorm:MEAN:SIGMA
//
// Durations use Go syntax (e.g. 1ms, 500us).
func ParseDemand(spec string) (dist.Duration, error) {
	parts := strings.Split(spec, ":")
	bad := func() (dist.Duration, error) {
		return nil, fmt.Errorf("cli: bad demand spec %q", spec)
	}
	d := func(s string) (time.Duration, bool) {
		v, err := time.ParseDuration(s)
		return v, err == nil && v > 0
	}
	switch parts[0] {
	case "exp":
		if len(parts) != 2 {
			return bad()
		}
		if m, ok := d(parts[1]); ok {
			return dist.Exponential{M: m}, nil
		}
	case "det":
		if len(parts) != 2 {
			return bad()
		}
		if m, ok := d(parts[1]); ok {
			return dist.Deterministic{V: m}, nil
		}
	case "unif":
		if len(parts) != 3 {
			return bad()
		}
		lo, ok1 := d(parts[1])
		hi, ok2 := d(parts[2])
		if ok1 && ok2 && hi >= lo {
			return dist.Uniform{Lo: lo, Hi: hi}, nil
		}
	case "bimodal":
		if len(parts) != 4 {
			return bad()
		}
		small, ok1 := d(parts[1])
		large, ok2 := d(parts[2])
		var p float64
		if _, err := fmt.Sscanf(parts[3], "%f", &p); err == nil && ok1 && ok2 && p >= 0 && p <= 1 {
			return dist.Bimodal{Small: small, Large: large, PSmall: p}, nil
		}
	case "pareto":
		if len(parts) != 4 {
			return bad()
		}
		lo, ok1 := d(parts[1])
		hi, ok2 := d(parts[2])
		var a float64
		if _, err := fmt.Sscanf(parts[3], "%f", &a); err == nil && ok1 && ok2 && a > 0 {
			return dist.BoundedPareto{Lo: lo, Hi: hi, Alpha: a}, nil
		}
	case "lognorm":
		if len(parts) != 3 {
			return bad()
		}
		m, ok := d(parts[1])
		var sig float64
		if _, err := fmt.Sscanf(parts[2], "%f", &sig); err == nil && ok && sig > 0 {
			return dist.Lognormal{M: m, Sigma: sig}, nil
		}
	}
	return bad()
}

// ParseFanout builds a fan-out distribution from a CLI spec:
//
//	const:N | unif:LO:HI | zipf:MAX:S | geom:MEAN
func ParseFanout(spec string) (dist.Discrete, error) {
	parts := strings.Split(spec, ":")
	bad := func() (dist.Discrete, error) {
		return nil, fmt.Errorf("cli: bad fanout spec %q", spec)
	}
	switch parts[0] {
	case "const":
		var n int
		if len(parts) == 2 {
			if _, err := fmt.Sscanf(parts[1], "%d", &n); err == nil && n > 0 {
				return dist.ConstInt{N: n}, nil
			}
		}
	case "unif":
		var lo, hi int
		if len(parts) == 3 {
			_, err1 := fmt.Sscanf(parts[1], "%d", &lo)
			_, err2 := fmt.Sscanf(parts[2], "%d", &hi)
			if err1 == nil && err2 == nil && lo > 0 && hi >= lo {
				return dist.UniformInt{Lo: lo, Hi: hi}, nil
			}
		}
	case "zipf":
		var maxV int
		var s float64
		if len(parts) == 3 {
			_, err1 := fmt.Sscanf(parts[1], "%d", &maxV)
			_, err2 := fmt.Sscanf(parts[2], "%f", &s)
			if err1 == nil && err2 == nil && maxV > 0 && s >= 0 {
				z, err := dist.NewZipfInt(maxV, s)
				if err != nil {
					return nil, fmt.Errorf("cli: %w", err)
				}
				return z, nil
			}
		}
	case "geom":
		var m float64
		if len(parts) == 2 {
			if _, err := fmt.Sscanf(parts[1], "%f", &m); err == nil && m >= 1 {
				return dist.GeometricInt{M: m}, nil
			}
		}
	}
	return bad()
}
