package cli

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/daskv/daskv/internal/dist"
)

// ParseRate parses an event rate in events per second: a plain number
// ("1200", "0.5") or one with a decimal scale suffix ("12k" = 12000,
// "1.5M" = 1500000). It is the one rate parser shared by dasbench,
// dassim, and dasload so every command agrees on what "-rate 20k"
// means.
func ParseRate(s string) (float64, error) {
	orig := s
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, s[:len(s)-1]
	}
	r, err := strconv.ParseFloat(s, 64)
	if err != nil || r <= 0 {
		return 0, fmt.Errorf("cli: bad rate %q (want a positive number, optionally with a k or M suffix)", orig)
	}
	return r * mult, nil
}

// ParseRates parses a comma-separated ascending list of rates
// ("2k,5k,10k").
func ParseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := ParseRate(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ArrivalFactory builds an arrival process for a given mean rate — the
// shape is fixed by the spec, the rate is supplied per sweep point.
type ArrivalFactory func(rate float64) (dist.Arrival, error)

// ParseArrival parses an open-loop arrival-process spec:
//
//	poisson             memoryless arrivals (the default)
//	fixed               perfectly periodic arrivals
//	onoff:ON:OFF        bursty MMPP: exponential on-periods with mean ON
//	                    carrying all arrivals, silent off-periods with
//	                    mean OFF; the on-state rate is scaled so the
//	                    long-run mean hits the requested rate
//
// It returns a factory because sweep drivers rebuild the process at
// each offered-rate step.
func ParseArrival(spec string) (ArrivalFactory, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "", "poisson":
		if len(parts) != 1 && spec != "" {
			return nil, fmt.Errorf("cli: bad arrival spec %q", spec)
		}
		return func(rate float64) (dist.Arrival, error) { return dist.NewPoisson(rate, nil) }, nil
	case "fixed":
		if len(parts) != 1 {
			return nil, fmt.Errorf("cli: bad arrival spec %q", spec)
		}
		return func(rate float64) (dist.Arrival, error) { return dist.NewFixedRate(rate) }, nil
	case "onoff":
		if len(parts) != 3 {
			return nil, fmt.Errorf("cli: bad arrival spec %q (want onoff:ON:OFF)", spec)
		}
		on, err1 := time.ParseDuration(parts[1])
		off, err2 := time.ParseDuration(parts[2])
		if err1 != nil || err2 != nil || on <= 0 || off < 0 {
			return nil, fmt.Errorf("cli: bad arrival spec %q (want onoff:ON:OFF with positive durations)", spec)
		}
		return func(rate float64) (dist.Arrival, error) { return dist.NewOnOff(rate, on, off) }, nil
	}
	return nil, fmt.Errorf("cli: unknown arrival process %q (poisson | fixed | onoff:ON:OFF)", parts[0])
}
