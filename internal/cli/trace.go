package cli

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/daskv/daskv/internal/kv"
)

// traceTimelineWidth is the character budget for the ASCII fan-out
// timeline; each op's bar is scaled into it relative to the RCT.
const traceTimelineWidth = 40

// RenderTrace writes one multiget's end-to-end timeline: a summary
// line, a per-operation table (server, attempts, wait/service split,
// scheduling class), and an ASCII fan-out chart where each bar spans
// the op's [Start, End] on the shared request clock. The straggler —
// the op that set the request completion time — is flagged with `*` in
// both views, which is where a tail-latency diagnosis starts (see
// docs/OBSERVABILITY.md for a worked example).
func RenderTrace(w io.Writer, tr kv.RequestTrace) {
	fmt.Fprintf(w, "request #%d  fanout=%d  rct=%s", tr.Seq, tr.Fanout, fmtDur(tr.RCT))
	if tr.Partial {
		fmt.Fprint(w, "  PARTIAL")
	}
	fmt.Fprintln(w)
	if len(tr.Ops) == 0 {
		return
	}

	keyW := len("KEY")
	for i := range tr.Ops {
		if n := len(tr.Ops[i].Key); n > keyW {
			keyW = n
		}
	}
	fmt.Fprintf(w, "  %-*s  %-6s  %-3s  %-8s  %-8s  %-8s  %-8s  %-12s  %s\n",
		keyW, "KEY", "SERVER", "TRY", "START", "END", "WAIT", "SERVICE", "CLASS", "NOTE")
	for i := range tr.Ops {
		op := &tr.Ops[i]
		fmt.Fprintf(w, "  %-*s  %-6s  %-3d  %-8s  %-8s  %-8s  %-8s  %-12s  %s\n",
			keyW, op.Key, fmt.Sprintf("s%d", op.Server), op.Attempts,
			fmtDur(op.Start), fmtDur(op.End), fmtDur(op.Wait), fmtDur(op.Service),
			op.Class, opNote(op))
	}

	fmt.Fprintln(w)
	span := tr.RCT
	if span <= 0 {
		span = 1
	}
	for i := range tr.Ops {
		op := &tr.Ops[i]
		lead := int(int64(traceTimelineWidth) * int64(op.Start) / int64(span))
		bar := int(int64(traceTimelineWidth)*int64(op.End)/int64(span)) - lead
		if bar < 1 {
			bar = 1
		}
		if lead+bar > traceTimelineWidth {
			lead = traceTimelineWidth - bar
			if lead < 0 {
				lead = 0
			}
		}
		mark := " "
		if op.Straggler {
			mark = "*"
		}
		fmt.Fprintf(w, "  %-*s %s|%s%s| %s\n",
			keyW, op.Key, mark,
			strings.Repeat(" ", lead), strings.Repeat("=", bar), fmtDur(op.End))
	}
	if s := tr.Straggler(); s != nil {
		fmt.Fprintf(w, "  * straggler: %s on s%d set the rct (net+client overhead %s of %s)\n",
			s.Key, s.Server, fmtDur(s.End-s.Start-s.Wait-s.Service), fmtDur(s.End-s.Start))
	}
}

// opNote summarizes an op's outcome for the trace table.
func opNote(op *kv.OpTrace) string {
	switch {
	case op.Err != "":
		return "ERROR " + op.Err
	case !op.Found:
		return "not found"
	case op.Straggler:
		return fmt.Sprintf("straggler, %dB", op.Bytes)
	default:
		return fmt.Sprintf("%dB", op.Bytes)
	}
}

// fmtDur rounds a duration for column display (µs under 10ms, else
// 10µs precision) so the table stays readable.
func fmtDur(d time.Duration) string {
	if d < 10*time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(10 * time.Microsecond).String()
}
